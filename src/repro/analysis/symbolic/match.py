"""Path-matching entailment over the relational IR.

Given a *position sequence* — skeleton events laid out along a candidate
critical cycle (or a straight line, for the order tables) — the
:class:`Matcher` decides whether a pair of positions is **provably** a
member of a compiled cat expression (:mod:`repro.analysis.catir.ir`) in
every candidate execution where the supplied communication edges hold.

Everything is an *under-approximation* of real membership: ``match``
returns True only when the pair is certainly in the relation, ``refute``
returns True only when it certainly is not, and set membership is
three-valued.  A query the engine cannot settle simply fails, which makes
the prover built on top fall back to enumeration — never lie.

The proof rules compose through the positions themselves: a sequential
composition ``a ; b`` over span ``(i, j)`` looks for an intermediate
position, closures run a forward-chaining DP, and the one relation whose
natural witness is *not* a position — ``fr = rf^-1 ; co``, whose middle
event is the read's (possibly initial) coherence predecessor — is fused
structurally: a ``rf^-1 ; co`` operand pair may consume a span as a
single known from-read edge.

Soundness of each base fact:

* ``po`` — positions carry their thread and trace index; thread_sem
  emits events in program order, so ``same tid ∧ earlier index`` is
  exactly po.
* ``addr``/``data``/``ctrl`` — the skeleton's dependency sets replicate
  thread_sem's taint computation index for index.
* ``rf``/``co``/``fr`` — only pairs the caller pinned from the condition
  footprint (present in every execution under consideration).
* ``fencerel(S)`` — an unconditional fence of a matching tag sits
  po-between the endpoints in the skeleton, hence in every trace.
* ``int``/``ext``/``loc``/``id`` — structural facts of the events.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.cat import TAG_SETS
from repro.events import FENCE, READ, WRITE

from repro.analysis.catir import ir
from repro.analysis.symbolic.skeleton import ProgramSkeleton, SkelEvent

Key = Tuple[int, int]
Pair = Tuple[Key, Key]


class EdgeSet:
    """Communication edges guaranteed in every execution under
    consideration (a condition-footprint scenario)."""

    __slots__ = ("rf", "co", "fr")

    def __init__(
        self,
        rf: FrozenSet[Pair] = frozenset(),
        co: FrozenSet[Pair] = frozenset(),
        fr: FrozenSet[Pair] = frozenset(),
    ):
        self.rf = frozenset(rf)
        self.co = frozenset(co)
        self.fr = frozenset(fr)

    def union(self, other: "EdgeSet") -> "EdgeSet":
        return EdgeSet(
            self.rf | other.rf, self.co | other.co, self.fr | other.fr
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, EdgeSet)
            and self.rf == other.rf
            and self.co == other.co
            and self.fr == other.fr
        )

    def __hash__(self) -> int:
        return hash((self.rf, self.co, self.fr))


class Matcher:
    """Entailment queries over one position sequence.

    ``positions`` is the sequence of skeleton events; when ``period`` is
    set, index arithmetic is modulo that period (the sequence represents
    a cycle and spans may wrap exactly once — queries use indices up to
    ``2 * period``).  Matchers are cheap and short-lived: one per
    (cycle, edge scenario).
    """

    def __init__(
        self,
        skeleton: Optional[ProgramSkeleton],
        edges: EdgeSet,
        positions: Sequence[SkelEvent],
        period: Optional[int] = None,
    ):
        self.skeleton = skeleton
        self.edges = edges
        self.period = period
        if period is not None:
            # Double the ring so any rotation's full wrap is addressable.
            self.positions = list(positions) * 2
        else:
            self.positions = list(positions)
        self._memo: Dict[Tuple[int, int, int], bool] = {}

    # -- position helpers --------------------------------------------------

    def at(self, i: int) -> SkelEvent:
        return self.positions[i]

    def same_event(self, i: int, j: int) -> bool:
        if self.period is None:
            return i == j
        return (j - i) % self.period == 0

    def span_limit(self) -> int:
        """The largest meaningful span length."""
        return self.period if self.period is not None \
            else len(self.positions) - 1

    def _fences_between(self, a: SkelEvent, b: SkelEvent) -> List[SkelEvent]:
        if self.skeleton is not None:
            return self.skeleton.fences_between(a, b)
        # Order-table mode: interposed fences are themselves positions.
        return [
            event
            for event in self.positions
            if event.kind == FENCE and event.tid == a.tid
            and a.index < event.index < b.index
        ]

    # -- set membership (three-valued) ------------------------------------

    def in_set(self, node: ir.Node, event: SkelEvent) -> Optional[bool]:
        kind = node.kind
        if kind == "base":
            name = node.name
            if name == "_":
                return True
            if name == "R":
                return event.kind == READ
            if name == "W":
                return event.kind == WRITE
            if name == "M":
                return event.kind in (READ, WRITE)
            if name == "F":
                return event.kind == FENCE
            if name == "IW":
                return False  # initial writes are never skeleton events
            tag = TAG_SETS.get(name)
            if tag is not None:
                return event.tag == tag
            return None
        if kind == "empty":
            return False
        if kind == "union":
            saw_unknown = False
            for op in node.operands:
                member = self.in_set(op, event)
                if member:
                    return True
                if member is None:
                    saw_unknown = True
            return None if saw_unknown else False
        if kind == "inter":
            saw_unknown = False
            for op in node.operands:
                member = self.in_set(op, event)
                if member is False:
                    return False
                if member is None:
                    saw_unknown = True
            return None if saw_unknown else True
        if kind == "diff":
            lhs = self.in_set(node.operands[0], event)
            rhs = self.in_set(node.operands[1], event)
            if lhs is False or rhs is True:
                return False
            if lhs is True and rhs is False:
                return True
            return None
        return None  # domain/range/compl/rec: unknown

    # -- pair membership ---------------------------------------------------

    def match(self, node: ir.Node, i: int, j: int) -> bool:
        """True only when ``(positions[i], positions[j])`` is provably in
        ``node`` for every execution carrying this matcher's edges."""
        key = (id(node), i, j)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        # Seed False so a recursive proof that needs itself is rejected
        # (a sound least-fixpoint under-approximation for rec groups).
        self._memo[key] = False
        result = self._match(node, i, j)
        self._memo[key] = result
        return result

    def _match(self, node: ir.Node, i: int, j: int) -> bool:
        a, b = self.at(i), self.at(j)
        kind = node.kind
        if kind == "base":
            return self._match_base(node.name, i, j, a, b)
        if kind == "empty":
            return False
        if kind == "rec":
            bodies = ir.group_of(node).bodies
            return bool(bodies) and self.match(bodies[node.pos], i, j)
        if kind == "union":
            return any(self.match(op, i, j) for op in node.operands)
        if kind == "inter":
            return all(self.match(op, i, j) for op in node.operands)
        if kind == "diff":
            return self.match(node.operands[0], i, j) and self.refute(
                node.operands[1], i, j
            )
        if kind == "compl":
            return self.refute(node.operands[0], i, j)
        if kind == "inverse":
            return self._match_inverse(node.operands[0], i, j)
        if kind == "opt":
            return self.same_event(i, j) or self.match(node.operands[0], i, j)
        if kind == "star":
            return self.same_event(i, j) or self._plus(node.operands[0], i, j)
        if kind == "plus":
            return self._plus(node.operands[0], i, j)
        if kind == "setid":
            return self.same_event(i, j) and (
                self.in_set(node.operands[0], a) is True
            )
        if kind == "cartesian":
            return (
                self.in_set(node.operands[0], a) is True
                and self.in_set(node.operands[1], b) is True
            )
        if kind == "fencerel":
            return self._fencerel(node.operands[0], i, j, a, b)
        if kind == "seq":
            return self._seq(node.operands, i, j)
        return False

    def _match_base(self, name: str, i: int, j: int,
                    a: SkelEvent, b: SkelEvent) -> bool:
        if name == "po":
            return a.tid == b.tid and a.index < b.index
        if name == "rf":
            return (a.key, b.key) in self.edges.rf
        if name == "co":
            return (a.key, b.key) in self.edges.co
        if name == "addr":
            return a.tid == b.tid and a.index in b.addr_deps
        if name == "data":
            return a.tid == b.tid and a.index in b.data_deps
        if name == "ctrl":
            return a.tid == b.tid and a.index in b.ctrl_deps
        if name == "int":
            return a.tid == b.tid
        if name == "ext":
            return a.tid != b.tid
        if name == "loc":
            return a.loc is not None and a.loc == b.loc
        if name == "id":
            return self.same_event(i, j)
        return False  # rmw, crit, unknown bases: no provable pairs

    def _match_inverse(self, operand: ir.Node, i: int, j: int) -> bool:
        a, b = self.at(i), self.at(j)
        if operand.kind == "base":
            if operand.name == "rf":
                return (b.key, a.key) in self.edges.rf
            if operand.name == "co":
                return (b.key, a.key) in self.edges.co
            if operand.name == "po":
                # po^-1 along a forward span is only the degenerate case.
                return False
        return False

    def _fencerel(self, sets: ir.Node, i: int, j: int,
                  a: SkelEvent, b: SkelEvent) -> bool:
        if a.tid != b.tid or a.index >= b.index:
            return False
        return any(
            self.in_set(sets, fence) is True
            for fence in self._fences_between(a, b)
        )

    def _is_fr_fusion(self, first: ir.Node, second: ir.Node) -> bool:
        return (
            first.kind == "inverse"
            and first.operands[0].kind == "base"
            and first.operands[0].name == "rf"
            and second.kind == "base"
            and second.name == "co"
        )

    def _seq(self, operands: Tuple[ir.Node, ...], i: int, j: int) -> bool:
        # states[t] = positions reachable after consuming operands[:t].
        count = len(operands)
        states: List[set] = [set() for _ in range(count + 1)]
        states[0].add(i)
        for t, op in enumerate(operands):
            fused = t + 1 < count and self._is_fr_fusion(op, operands[t + 1])
            for p in list(states[t]):
                for q in range(p, j + 1):
                    if self.match(op, p, q):
                        states[t + 1].add(q)
                    if fused and q > p and (
                        (self.at(p).key, self.at(q).key) in self.edges.fr
                    ):
                        states[t + 2].add(q)
        return j in states[count]

    def _plus(self, op: ir.Node, i: int, j: int) -> bool:
        # Forward-chaining closure: chains of >= 1 step, intermediate
        # positions strictly between i and j.
        reach = [False] * (j - i + 1)
        for q in range(i, j + 1):
            if self.match(op, i, q):
                reach[q - i] = True
        if reach[j - i]:
            return True
        changed = True
        while changed and not reach[j - i]:
            changed = False
            for p in range(i, j + 1):
                if not reach[p - i]:
                    continue
                for q in range(p + 1, j + 1):
                    if not reach[q - i] and self.match(op, p, q):
                        reach[q - i] = True
                        changed = True
        return reach[j - i]

    # -- definite non-membership ------------------------------------------

    def refute(self, node: ir.Node, i: int, j: int) -> bool:
        """True only when the pair is provably *not* in ``node``."""
        a, b = self.at(i), self.at(j)
        kind = node.kind
        if kind == "base":
            name = node.name
            if name == "id":
                return not self.same_event(i, j)
            if name == "int":
                return a.tid != b.tid
            if name == "ext":
                return a.tid == b.tid
            if name == "loc":
                return a.loc is None or b.loc is None or a.loc != b.loc
            if name == "po":
                # Exact: po is precisely same-thread program order.
                return not (a.tid == b.tid and a.index < b.index)
            if name in ("addr", "data", "ctrl"):
                deps = getattr(b, f"{name}_deps")
                return not (a.tid == b.tid and a.index in deps)
            if name == "rmw":
                return True  # the skeleton fragment contains no RMWs
            return False  # rf/co/crit: pins are a subset, can't refute
        if kind == "empty":
            return True
        if kind == "union":
            return all(self.refute(op, i, j) for op in node.operands)
        if kind == "inter":
            return any(self.refute(op, i, j) for op in node.operands)
        if kind == "diff":
            return self.refute(node.operands[0], i, j) or self.match(
                node.operands[1], i, j
            )
        if kind == "compl":
            return self.match(node.operands[0], i, j)
        if kind == "opt":
            return not self.same_event(i, j) and self.refute(
                node.operands[0], i, j
            )
        if kind == "setid":
            return not self.same_event(i, j) or (
                self.in_set(node.operands[0], a) is False
            )
        if kind == "cartesian":
            return (
                self.in_set(node.operands[0], a) is False
                or self.in_set(node.operands[1], b) is False
            )
        if kind == "fencerel":
            if a.tid != b.tid or a.index >= b.index:
                return True
            return all(
                self.in_set(node.operands[0], fence) is False
                for fence in self._fences_between(a, b)
            )
        return False  # seq/plus/star/rec/inverse: not refutable here


def violated_check(matcher: Matcher, checks) -> Optional[str]:
    """The label of a non-flag acyclic/irreflexive check the cycle
    provably violates, or None.

    For ``acyclic r`` (irreflexive ``r+``) the goal is a full wrap of the
    ring inside ``r+``; for ``irreflexive r`` the wrap — or a reflexive
    pair at a single position — inside ``r`` itself.
    """
    period = matcher.period
    assert period is not None, "violated_check needs a cyclic matcher"
    for check in checks:
        if check.flag or check.negated:
            continue
        if check.kind == "acyclic":
            target = ir.plus(check.root)
            for k in range(period):
                if matcher.match(target, k, k + period):
                    return check.label
        elif check.kind == "irreflexive":
            for k in range(period):
                if matcher.match(check.root, k, k) or matcher.match(
                    check.root, k, k + period
                ):
                    return check.label
    return None
