"""Rendering candidate executions as Graphviz DOT.

herd can display candidate executions as graphs (the paper's Figures 2,
4-7, 9-11, 13, 14, 16 are such renderings); this module produces the
same kind of picture as DOT text: one cluster per thread, program order
top-to-bottom, and the communication / derived relations as coloured
labelled edges.

No graphviz dependency is required to *produce* the text; render it with
``dot -Tpdf`` wherever graphviz is available.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.events import Event
from repro.executions.candidate import CandidateExecution
from repro.relations import Relation

#: Default relations to draw and their colours (herd's conventions).
DEFAULT_EDGES: Dict[str, str] = {
    "rf": "red",
    "co": "blue",
    "fr": "brown",
    "addr": "darkgreen",
    "data": "darkgreen",
    "ctrl": "darkgreen",
    "rmw": "purple",
}


def _node_id(event: Event) -> str:
    return f"e{event.eid}"


def _node_label(event: Event) -> str:
    name = event.label or f"e{event.eid}"
    if event.is_fence:
        return f"{name}: F[{event.tag}]"
    return f"{name}: {event.kind}[{event.tag}] {event.loc}={event.value!r}"


def to_dot(
    execution: CandidateExecution,
    extra_relations: Optional[Dict[str, Relation]] = None,
    include_init: bool = False,
    title: Optional[str] = None,
) -> str:
    """Render ``execution`` as DOT text.

    ``extra_relations`` adds named derived relations (e.g. the hb of a
    forbidding cycle) as dashed orange edges.
    """
    lines: List[str] = ["digraph execution {"]
    lines.append(f'  label="{title or execution.name}";')
    lines.append("  labelloc=t;")
    lines.append('  node [shape=box, fontname="monospace", fontsize=10];')

    by_tid: Dict[int, List[Event]] = {}
    for event in execution.sorted_events():
        if event.is_init and not include_init:
            continue
        by_tid.setdefault(event.tid, []).append(event)

    for tid in sorted(by_tid):
        events = by_tid[tid]
        name = "init" if tid < 0 else f"T{tid}"
        lines.append(f"  subgraph cluster_{tid if tid >= 0 else 'init'} {{")
        lines.append(f'    label="{name}";')
        for event in events:
            lines.append(
                f'    {_node_id(event)} [label="{_node_label(event)}"];'
            )
        # Program order as invisible-ish structural edges.
        for a, b in zip(events, events[1:]):
            lines.append(
                f"    {_node_id(a)} -> {_node_id(b)} "
                '[color=gray, label="po", fontcolor=gray];'
            )
        lines.append("  }")

    drawn = set()
    for name, colour in DEFAULT_EDGES.items():
        relation: Relation = getattr(execution, name if name != "fr" else "fr")
        for a, b in relation.pairs:
            if (a.is_init or b.is_init) and not include_init:
                continue
            key = (name, a.eid, b.eid)
            if key in drawn:
                continue
            drawn.add(key)
            lines.append(
                f"  {_node_id(a)} -> {_node_id(b)} "
                f'[color={colour}, label="{name}", fontcolor={colour}, '
                "constraint=false];"
            )

    for name, relation in (extra_relations or {}).items():
        for a, b in relation.pairs:
            if (a.is_init or b.is_init) and not include_init:
                continue
            lines.append(
                f"  {_node_id(a)} -> {_node_id(b)} "
                f'[color=orange, style=dashed, label="{name}", '
                "fontcolor=orange, constraint=false];"
            )

    lines.append("}")
    return "\n".join(lines) + "\n"


def cycle_to_dot(
    execution: CandidateExecution,
    cycle: Iterable[Event],
    title: Optional[str] = None,
) -> str:
    """Render an execution with a forbidding cycle highlighted."""
    cycle = list(cycle)
    pairs = list(zip(cycle, cycle[1:]))
    highlight = Relation(pairs, execution.universe)
    return to_dot(
        execution,
        extra_relations={"cycle": highlight},
        title=title or f"{execution.name} (forbidden)",
    )
