"""Deterministic fault injection for exercising the recovery paths.

``REPRO_FAULT`` describes a seeded fault mix, e.g.::

    REPRO_FAULT="crash:0.05,hang:0.01,slow:0.1,seed=8"

* ``crash:p`` — the worker process exits abruptly (``os._exit``), the
  moral equivalent of an OOM kill; the parent sees a broken pool.
* ``hang:p`` — the task sleeps far past any per-shard deadline, so the
  parent's hang detection has something to detect.
* ``slow:p`` — the task sleeps briefly; exercises deadline slack without
  requiring recovery.

Injection is *deterministic*: whether a task faults is a pure function of
``(seed, nonce)``, where the nonce encodes the task identity **and the
attempt number**.  The same seed therefore kills the same tasks on every
run (reproducible CI), while a retried task draws a fresh nonce and
eventually succeeds — which is exactly the property the fault-injection
lane asserts: the golden verdicts survive injected chaos via retries.

Faults fire only inside worker-pool processes
(:func:`mark_worker_process`, called by the pool initializer).  A crash
injected into the parent would take pytest down with it, which is chaos
of the unhelpful kind.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Optional

#: Sleep lengths for the non-fatal fault kinds.
HANG_SECONDS = 600.0
SLOW_SECONDS = 0.05

#: Exit status of an injected crash (distinguishable from real tracebacks).
CRASH_EXIT_CODE = 86

#: Set by the worker-pool initializer; faults never fire in the parent.
_IN_WORKER = False

#: Process-local override; ``None`` defers to the environment.
_spec_override: Optional["FaultSpec"] = None
_ENV_UNSET = "\0unset"
_env_cache = (_ENV_UNSET, None)


@dataclass(frozen=True)
class FaultSpec:
    """A parsed ``REPRO_FAULT`` value."""

    crash: float = 0.0
    hang: float = 0.0
    slow: float = 0.0
    seed: int = 0

    def any(self) -> bool:
        return (self.crash + self.hang + self.slow) > 0.0


def parse_fault_spec(raw: Optional[str]) -> Optional[FaultSpec]:
    """Parse ``crash:0.05,hang:0.01,slow:0.1,seed=8`` (order-free).

    Returns ``None`` for empty input; raises ``ValueError`` on unknown
    keys or malformed numbers so a typo'd spec fails loudly rather than
    silently injecting nothing.
    """
    if raw is None or not raw.strip():
        return None
    fields = {}
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        separator = ":" if ":" in part else "="
        key, _, value = part.partition(separator)
        key = key.strip().lower()
        value = value.strip()
        if key == "seed":
            fields["seed"] = int(value)
        elif key in ("crash", "hang", "slow"):
            probability = float(value)
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"REPRO_FAULT {key} probability {probability} not in [0, 1]"
                )
            fields[key] = probability
        else:
            raise ValueError(f"REPRO_FAULT: unknown field {key!r}")
    return FaultSpec(**fields)


def raw_spec() -> Optional[str]:
    """The spec as a replicable string (for worker-pool initargs)."""
    if _spec_override is not None:
        return (
            f"crash:{_spec_override.crash},hang:{_spec_override.hang},"
            f"slow:{_spec_override.slow},seed={_spec_override.seed}"
        )
    return os.environ.get("REPRO_FAULT")


def active_spec() -> Optional[FaultSpec]:
    """The effective fault spec (override, else ``REPRO_FAULT``)."""
    global _env_cache
    if _spec_override is not None:
        return _spec_override
    raw = os.environ.get("REPRO_FAULT")
    cached_raw, cached_value = _env_cache
    if raw != cached_raw:
        _env_cache = (raw, parse_fault_spec(raw))
    return _env_cache[1]


def set_spec(spec: Optional[FaultSpec]) -> None:
    """Set a process-local spec override; ``None`` defers to the env."""
    global _spec_override
    _spec_override = spec


def mark_worker_process(raw: Optional[str]) -> None:
    """Called by the pool initializer: arm injection in this process."""
    global _IN_WORKER
    _IN_WORKER = True
    set_spec(parse_fault_spec(raw) if raw else None)


def in_worker() -> bool:
    return _IN_WORKER


def _unit(seed: int, nonce: str) -> float:
    """A deterministic draw in [0, 1) from (seed, nonce)."""
    digest = hashlib.sha256(f"{seed}|{nonce}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


def maybe_inject(nonce: str) -> None:
    """Possibly inject a fault for task ``nonce`` (worker processes only)."""
    if not _IN_WORKER:
        return
    spec = active_spec()
    if spec is None or not spec.any():
        return
    draw = _unit(spec.seed, nonce)
    if draw < spec.crash:
        os._exit(CRASH_EXIT_CODE)
    if draw < spec.crash + spec.hang:
        time.sleep(HANG_SECONDS)
        return
    if draw < spec.crash + spec.hang + spec.slow:
        time.sleep(SLOW_SECONDS)
