"""Abstract syntax of litmus-test programs.

Instructions correspond to the Linux-kernel primitives of Tables 3 and 4 of
the paper.  Each primitive is represented by the events it gives rise to:

==============================  =======================================
LK/C primitive                  Event(s)
==============================  =======================================
``READ_ONCE()``                 ``R[once]``
``WRITE_ONCE()``                ``W[once]``
``smp_load_acquire()``          ``R[acquire]``
``smp_store_release()``         ``W[release]``
``smp_rmb()``                   ``F[rmb]``
``smp_wmb()``                   ``F[wmb]``
``smp_mb()``                    ``F[mb]``
``smp_read_barrier_depends()``  ``F[rb-dep]``
``xchg_relaxed()``              ``R[once], W[once]``
``xchg_acquire()``              ``R[acquire], W[once]``
``xchg_release()``              ``R[once], W[release]``
``xchg()``                      ``F[mb], R[once], W[once], F[mb]``
``rcu_dereference()``           ``R[once], F[rb-dep]``
``rcu_assign_pointer()``        ``W[release]``
``rcu_read_lock()``             ``F[rcu-lock]``
``rcu_read_unlock()``           ``F[rcu-unlock]``
``synchronize_rcu()``           ``F[sync-rcu]``
==============================  =======================================

Expressions evaluate to integers or :class:`~repro.events.Pointer` values;
evaluation also tracks which read events the result *depends on*, which is
how the address, data, and control dependency relations are computed
(:mod:`repro.executions.thread_sem`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.events import ACQUIRE, MB, ONCE, Pointer, RELEASE, Value
from repro.litmus.outcomes import Condition


class LitmusError(Exception):
    """Raised for malformed litmus programs."""


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for value expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(Expr):
    """A literal value: an integer or a pointer ``&loc``."""

    value: Value

    def __repr__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Reg(Expr):
    """A private (per-thread) register, e.g. ``r1``."""

    name: str

    def __repr__(self) -> str:
        return self.name


_INT_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "^": lambda a, b: a ^ b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "<": lambda a, b: int(a < b),
    ">": lambda a, b: int(a > b),
    "<=": lambda a, b: int(a <= b),
    ">=": lambda a, b: int(a >= b),
    "&&": lambda a, b: int(bool(a) and bool(b)),
    "||": lambda a, b: int(bool(a) or bool(b)),
}


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation.  ``==``/``!=`` also compare pointers."""

    op: str
    lhs: Expr
    rhs: Expr

    def apply(self, a: Value, b: Value) -> Value:
        if self.op == "==":
            return int(a == b)
        if self.op == "!=":
            return int(a != b)
        fn = _INT_OPS.get(self.op)
        if fn is None:
            raise LitmusError(f"unknown binary operator {self.op!r}")
        if isinstance(a, Pointer) or isinstance(b, Pointer):
            # Pointer arithmetic exists only for diy-style false address
            # dependencies: `p + (r & 0)` keeps the address but taints it.
            if self.op == "+" and isinstance(a, Pointer) and b == 0:
                return a
            raise LitmusError(
                f"operator {self.op!r} is not defined on pointers ({a!r}, {b!r})"
            )
        return fn(a, b)

    def __repr__(self) -> str:
        return f"({self.lhs!r} {self.op} {self.rhs!r})"


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary operation: ``!`` or ``-``."""

    op: str
    operand: Expr

    def apply(self, a: Value) -> Value:
        if isinstance(a, Pointer):
            if self.op == "!":
                return 0  # pointers to named locations are never NULL here
            raise LitmusError(f"operator {self.op!r} is not defined on pointers")
        if self.op == "!":
            return int(not a)
        if self.op == "-":
            return -a
        raise LitmusError(f"unknown unary operator {self.op!r}")

    def __repr__(self) -> str:
        return f"{self.op}{self.operand!r}"


# ---------------------------------------------------------------------------
# Instructions
# ---------------------------------------------------------------------------


class Instruction:
    """Base class for thread instructions.

    Every concrete instruction carries an optional ``lineno`` — the 1-based
    source line the parser saw it on — excluded from equality and repr so
    that structurally identical programs compare equal regardless of
    formatting.  Programs built through the DSL leave it ``None``.
    """

    __slots__ = ()


#: The ``lineno`` field shared by all instruction dataclasses.
def _lineno_field():
    return field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class Load(Instruction):
    """``reg = READ_ONCE(*addr)`` (or acquire / plain variants).

    ``addr`` must evaluate to a :class:`Pointer`.  ``tag`` is ``once``,
    ``acquire`` or ``plain``.  When ``rb_dep`` is true a trailing
    ``F[rb-dep]`` event is emitted, which is how ``rcu_dereference`` is
    modelled (Table 4).
    """

    reg: str
    addr: Expr
    tag: str = ONCE
    rb_dep: bool = False
    lineno: Optional[int] = _lineno_field()

    def __repr__(self) -> str:
        return f"{self.reg} = R[{self.tag}](*{self.addr!r})"


@dataclass(frozen=True)
class Store(Instruction):
    """``WRITE_ONCE(*addr, value)`` (or release / plain variants)."""

    addr: Expr
    value: Expr
    tag: str = ONCE
    lineno: Optional[int] = _lineno_field()

    def __repr__(self) -> str:
        return f"W[{self.tag}](*{self.addr!r}, {self.value!r})"


@dataclass(frozen=True)
class Fence(Instruction):
    """A fence primitive: ``smp_mb``, ``smp_wmb``, ``rcu_read_lock``, ..."""

    tag: str
    lineno: Optional[int] = _lineno_field()

    def __repr__(self) -> str:
        return f"F[{self.tag}]"


#: xchg variants and the tags of the read and write they produce, plus
#: whether they are bracketed by full fences (Table 3).
RMW_VARIANTS: Dict[str, Tuple[str, str, bool]] = {
    "xchg": (ONCE, ONCE, True),
    "xchg_relaxed": (ONCE, ONCE, False),
    "xchg_acquire": (ACQUIRE, ONCE, False),
    "xchg_release": (ONCE, RELEASE, False),
}


@dataclass(frozen=True)
class Rmw(Instruction):
    """``reg = xchg*(addr, value)`` — an unconditional read-modify-write.

    The read and write events are linked by the ``rmw`` relation and subject
    to the At axiom (no intervening external write).  When
    ``require_read_value`` is set, only executions where the read returns
    that value are generated; this models acquiring an uncontended spinlock
    (Section 7 of the paper emulates ``spin_lock`` as an ``xchg_acquire``
    that must observe the lock free).

    ``new_value`` may mention ``Reg(reg)``, which at that point holds the
    value just read — this is how ``atomic_add_return``-style increments are
    expressed (``new_value=BinOp('+', Reg(reg), Const(1))``).
    """

    reg: str
    addr: Expr
    new_value: Expr
    variant: str = "xchg"
    require_read_value: Optional[Value] = None
    lineno: Optional[int] = _lineno_field()

    def __post_init__(self) -> None:
        if self.variant not in RMW_VARIANTS:
            raise LitmusError(f"unknown rmw variant {self.variant!r}")

    @property
    def read_tag(self) -> str:
        return RMW_VARIANTS[self.variant][0]

    @property
    def write_tag(self) -> str:
        return RMW_VARIANTS[self.variant][1]

    @property
    def full_fences(self) -> bool:
        return RMW_VARIANTS[self.variant][2]

    def __repr__(self) -> str:
        return f"{self.reg} = {self.variant}(*{self.addr!r}, {self.new_value!r})"


@dataclass(frozen=True)
class CmpXchg(Instruction):
    """``reg = cmpxchg*(addr, expected, new)`` — a conditional RMW.

    On success (read value equals ``expected``) the write event is emitted
    and linked via ``rmw``; on failure only the read happens.  Both outcomes
    are enumerated.  Variants mirror :data:`RMW_VARIANTS`; per the kernel's
    documented semantics a failed ``cmpxchg`` provides no ordering beyond
    its read, so the surrounding full fences of the ``cmpxchg`` variant are
    emitted only on success.
    """

    reg: str
    addr: Expr
    expected: Expr
    new_value: Expr
    variant: str = "xchg"
    lineno: Optional[int] = _lineno_field()

    def __post_init__(self) -> None:
        if self.variant not in RMW_VARIANTS:
            raise LitmusError(f"unknown cmpxchg variant {self.variant!r}")

    def __repr__(self) -> str:
        return (
            f"{self.reg} = cmp-{self.variant}"
            f"(*{self.addr!r}, {self.expected!r}, {self.new_value!r})"
        )


@dataclass(frozen=True)
class If(Instruction):
    """``if (cond) { then } else { orelse }``.

    Any read feeding ``cond`` acquires a control dependency to every event
    emitted after the branch (in either arm *and* after the join), matching
    herd's treatment of ``ctrl``.
    """

    cond: Expr
    then: Tuple[Instruction, ...]
    orelse: Tuple[Instruction, ...] = ()
    lineno: Optional[int] = _lineno_field()

    def __repr__(self) -> str:
        return f"if ({self.cond!r}) {{...{len(self.then)}}} else {{...{len(self.orelse)}}}"


@dataclass(frozen=True)
class LocalAssign(Instruction):
    """``reg = expr`` — private register arithmetic, no events emitted."""

    reg: str
    expr: Expr
    lineno: Optional[int] = _lineno_field()

    def __repr__(self) -> str:
        return f"{self.reg} := {self.expr!r}"


@dataclass(frozen=True)
class Assume(Instruction):
    """Discard the trace unless ``cond`` holds.

    A verification construct (not a kernel primitive): used to bound loop
    unrolling — a ``while`` loop unrolled N times ends in ``Assume(!cond)``
    so that only executions where the loop exits within N iterations are
    considered, as in bounded model checking (cf. the paper's Section 1.4
    discussion of CBMC-based RCU verification).
    """

    cond: Expr
    lineno: Optional[int] = _lineno_field()

    def __repr__(self) -> str:
        return f"assume({self.cond!r})"


# ---------------------------------------------------------------------------
# Threads and programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Thread:
    """One thread: a straight-line body of instructions (with branches)."""

    body: Tuple[Instruction, ...]

    def __len__(self) -> int:
        return len(self.body)

    def cfg(self):
        """The thread's control-flow graph
        (:class:`repro.analysis.flow.cfg.Cfg`); ``If`` bodies become basic
        blocks with branch/join edges.  Imported lazily so the core AST
        stays dependency-free."""
        from repro.analysis.flow.cfg import build_cfg

        return build_cfg(self.body)


@dataclass(frozen=True)
class Program:
    """A complete litmus test.

    Attributes:
        name: Test name (e.g. ``MP+wmb+rmb``).
        threads: The concurrent threads.
        init: Initial values of shared locations.  Locations that appear in
            the program but not here start at 0, as in herd.
        condition: The final-state condition (``exists``/``forall``/...)
            or ``None`` for tests judged purely on allowed executions.
    """

    name: str
    threads: Tuple[Thread, ...]
    init: Dict[str, Value] = field(default_factory=dict)
    condition: Optional[Condition] = None

    def __post_init__(self) -> None:
        if not self.threads:
            raise LitmusError(f"litmus test {self.name!r} has no threads")

    @property
    def num_threads(self) -> int:
        return len(self.threads)

    def cfgs(self):
        """One control-flow graph per thread, in thread order."""
        return [thread.cfg() for thread in self.threads]

    def locations(self) -> List[str]:
        """All shared locations: those in ``init`` plus any statically named
        in the program text, sorted for determinism."""
        locs = set(self.init)
        for th in self.threads:
            _collect_locations(th.body, locs)
        return sorted(locs)

    def initial_value(self, location: str) -> Value:
        return self.init.get(location, 0)

    def __repr__(self) -> str:
        return f"<Program {self.name}: {self.num_threads} threads>"


def _collect_locations(body: Sequence[Instruction], locs: set) -> None:
    for ins in body:
        for expr in _instruction_exprs(ins):
            _collect_expr_locations(expr, locs)
        if isinstance(ins, If):
            _collect_locations(ins.then, locs)
            _collect_locations(ins.orelse, locs)


def _instruction_exprs(ins: Instruction) -> List[Expr]:
    if isinstance(ins, Load):
        return [ins.addr]
    if isinstance(ins, Store):
        return [ins.addr, ins.value]
    if isinstance(ins, Rmw):
        return [ins.addr, ins.new_value]
    if isinstance(ins, CmpXchg):
        return [ins.addr, ins.expected, ins.new_value]
    if isinstance(ins, If):
        return [ins.cond]
    if isinstance(ins, LocalAssign):
        return [ins.expr]
    if isinstance(ins, Assume):
        return [ins.cond]
    return []


def _collect_expr_locations(expr: Expr, locs: set) -> None:
    if isinstance(expr, Const) and isinstance(expr.value, Pointer):
        locs.add(expr.value.loc)
    elif isinstance(expr, BinOp):
        _collect_expr_locations(expr.lhs, locs)
        _collect_expr_locations(expr.rhs, locs)
    elif isinstance(expr, UnOp):
        _collect_expr_locations(expr.operand, locs)
