"""Budgets and cooperative cancellation.

One process-global :class:`Guard` (or none), armed with the :func:`guard`
context manager and mirrored into the module attribute :data:`ACTIVE` —
the same near-free disabled-path pattern as :mod:`repro.obs.core`.  Hot
loops bracket their safepoints with ``if _guard.ACTIVE:`` so an unarmed
run pays one attribute read per safepoint.

Safepoints come in two flavours:

* :meth:`Guard.tick` — one unit of exploration work (a trace combination,
  an rf×co extension step, a model check).  Ticks drive the *state*
  budget directly; every :data:`_TIME_MASK`-th tick also checks the
  wall-clock deadline and the cancellation token, and every
  :data:`_MEM_MASK`-th tick samples resident memory.  Counting ticks
  between clock reads keeps the common case at integer arithmetic.
* :meth:`Guard.note_candidate` — one fully-built candidate execution.
  Candidate counting is exact (never batched), so a ``max_candidates``
  budget trips after *precisely* that many candidates no matter the
  backend — the determinism the property tests rely on.

On exhaustion the guard raises :class:`BudgetExceeded` (or
:class:`Cancelled`) carrying an :class:`Interruption` provenance record:
which budget tripped, its limit, the observed value, and the exploration
counters at the moment of the stop.  :func:`repro.herd.run_litmus_many`
catches the stop and degrades the verdict to ``Inconclusive`` instead of
crashing — or keeps it decisive when the scanned prefix already settled
it (see DESIGN.md, "Degradation soundness").

Memory is a *soft* ceiling: resident set size is read from
``/proc/self/statm`` where available; elsewhere the guard falls back to
:mod:`tracemalloc` (started on arming when a memory budget is present and
rss sampling is unsupported).
"""

from __future__ import annotations

import os
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

from repro.obs import core as _obs

#: Fast-path flag for hot loops; always equals ``_current is not None``.
ACTIVE = False

_current: Optional["Guard"] = None

#: Wall-clock/cancellation check interval: every 64 ticks.
_TIME_MASK = 0x3F
#: Memory sampling interval: every 4096 ticks.
_MEM_MASK = 0xFFF

try:
    _PAGE_BYTES = os.sysconf("SC_PAGE_SIZE")
except (ValueError, OSError, AttributeError):  # pragma: no cover
    _PAGE_BYTES = 4096


def rss_mb() -> Optional[float]:
    """Resident set size in MB, or ``None`` where /proc is unavailable.

    Falls back to :mod:`tracemalloc`'s current traced size when tracing
    is on (the guard starts it on arming if a memory budget needs it).
    """
    try:
        with open("/proc/self/statm", "rb") as handle:
            return int(handle.read().split()[1]) * _PAGE_BYTES / 1e6
    except (OSError, ValueError, IndexError):
        if tracemalloc.is_tracing():
            return tracemalloc.get_traced_memory()[0] / 1e6
        return None


@dataclass(frozen=True)
class Budget:
    """Resource limits for one verification run; ``None`` means unlimited.

    Budgets are value objects: picklable (they cross the worker-pool
    boundary so parallel shards self-limit) and reusable (each
    :class:`Guard` arms a fresh set of counters).
    """

    #: Wall-clock ceiling in seconds, measured from arming.
    wall_seconds: Optional[float] = None
    #: Maximum candidate executions materialised.
    max_candidates: Optional[int] = None
    #: Maximum exploration steps (trace combos, rf×co extensions, model
    #: checks) — bounds runs that prune heavily without yielding.
    max_states: Optional[int] = None
    #: Soft resident-memory ceiling in MB, sampled at safepoints.
    max_mem_mb: Optional[float] = None

    def bounded(self) -> bool:
        """True when any limit is set."""
        return any(
            limit is not None
            for limit in (
                self.wall_seconds,
                self.max_candidates,
                self.max_states,
                self.max_mem_mb,
            )
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class Interruption:
    """Provenance of a budget trip: what stopped the run, and where.

    Shipped inside partial :class:`~repro.herd.RunResult` objects (and
    therefore across process boundaries), so it stays a plain picklable
    record.
    """

    #: ``wall_clock`` | ``candidates`` | ``states`` | ``memory`` |
    #: ``cancelled``.
    reason: str
    #: The limit that tripped (seconds, count, or MB); None for cancels.
    limit: Optional[float] = None
    #: The observed value at the trip.
    observed: Optional[float] = None
    #: Candidate executions explored before the stop.
    candidates: int = 0
    #: Exploration steps (ticks) before the stop.
    states: int = 0
    #: Wall-clock seconds elapsed when the guard stopped the run.
    elapsed_s: float = 0.0

    def describe(self) -> str:
        detail = ""
        if self.limit is not None:
            detail = f" (limit {self.limit:g}, observed {self.observed:g})"
        return (
            f"{self.reason}{detail} after {self.candidates} candidates, "
            f"{self.states} steps, {self.elapsed_s:.2f}s"
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


class GuardStop(Exception):
    """Base of the cooperative-stop exceptions; carries provenance."""

    def __init__(self, interruption: Interruption):
        super().__init__(interruption.describe())
        self.interruption = interruption


class BudgetExceeded(GuardStop):
    """A budget limit tripped at a safepoint."""


class Cancelled(GuardStop):
    """The run's :class:`CancelToken` was cancelled."""


class CancelToken:
    """A cooperative cancellation flag, checked at guard safepoints.

    Thread- and signal-safe in the only way that matters: ``cancel()``
    does a single attribute store, and readers only ever observe a
    monotonic False→True transition.
    """

    __slots__ = ("cancelled",)

    def __init__(self) -> None:
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class Guard:
    """Live budget enforcement for one run."""

    __slots__ = (
        "budget",
        "token",
        "candidates",
        "states",
        "_ticks",
        "_start",
        "_deadline",
        "_started_tracemalloc",
    )

    def __init__(
        self,
        budget: Optional[Budget] = None,
        token: Optional[CancelToken] = None,
    ):
        self.budget = budget if budget is not None else Budget()
        self.token = token
        self.candidates = 0
        self.states = 0
        self._ticks = 0
        self._start = time.perf_counter()
        self._deadline = (
            None
            if self.budget.wall_seconds is None
            else self._start + self.budget.wall_seconds
        )
        self._started_tracemalloc = False
        if self.budget.max_mem_mb is not None and rss_mb() is None:
            # No /proc rss on this platform: fall back to tracemalloc.
            if not tracemalloc.is_tracing():  # pragma: no cover - non-linux
                tracemalloc.start()
                self._started_tracemalloc = True

    # -- safepoints ------------------------------------------------------

    def tick(self, n: int = 1) -> None:
        """One (or ``n``) exploration steps; the cheap safepoint."""
        self.states += n
        budget = self.budget
        if budget.max_states is not None and self.states > budget.max_states:
            self._stop("states", budget.max_states, self.states)
        self._ticks += 1
        if self._ticks & _TIME_MASK == 0:
            self._check_clock()
            if self._ticks & _MEM_MASK == 0:
                self._check_memory()

    def note_candidate(self) -> None:
        """One materialised candidate execution; counted exactly."""
        self.candidates += 1
        budget = self.budget
        if (
            budget.max_candidates is not None
            and self.candidates > budget.max_candidates
        ):
            self._stop("candidates", budget.max_candidates, self.candidates)
        self.tick()

    def check(self) -> None:
        """An eager full check (clock, token, memory) — used at run entry
        so an already-cancelled token or blown deadline stops before any
        enumeration work."""
        self._check_clock()
        self._check_memory()

    # -- internals -------------------------------------------------------

    def elapsed(self) -> float:
        return time.perf_counter() - self._start

    def _check_clock(self) -> None:
        token = self.token
        if token is not None and token.cancelled:
            raise Cancelled(self._interruption("cancelled", None, None))
        if self._deadline is not None:
            now = time.perf_counter()
            if now > self._deadline:
                self._stop(
                    "wall_clock", self.budget.wall_seconds, now - self._start
                )

    def _check_memory(self) -> None:
        ceiling = self.budget.max_mem_mb
        if ceiling is None:
            return
        resident = rss_mb()
        if resident is not None and resident > ceiling:
            self._stop("memory", ceiling, resident)

    def _interruption(
        self, reason: str, limit: Optional[float], observed: Optional[float]
    ) -> Interruption:
        return Interruption(
            reason=reason,
            limit=limit,
            observed=observed,
            candidates=self.candidates,
            states=self.states,
            elapsed_s=self.elapsed(),
        )

    def _stop(
        self, reason: str, limit: Optional[float], observed: Optional[float]
    ) -> None:
        if _obs.ENABLED:
            _obs.count(f"guard.tripped.{reason}")
        raise BudgetExceeded(self._interruption(reason, limit, observed))

    def release(self) -> None:
        """Undo arming side effects (tracemalloc started on our behalf)."""
        if self._started_tracemalloc:  # pragma: no cover - non-linux
            tracemalloc.stop()
            self._started_tracemalloc = False


def current() -> Optional[Guard]:
    """The armed guard, if any."""
    return _current


def tick(n: int = 1) -> None:
    """Module-level safepoint (no-op when no guard is armed)."""
    active = _current
    if active is not None:
        active.tick(n)


def note_candidate() -> None:
    """Module-level candidate safepoint (no-op when unarmed)."""
    active = _current
    if active is not None:
        active.note_candidate()


@contextmanager
def guard(
    budget: Optional[Budget] = None, token: Optional[CancelToken] = None
):
    """Arm a :class:`Guard` for the duration of the block.

    Nested guards shadow the outer one (the outer guard resumes, with its
    clock still running, when the inner block exits) — mirroring
    :func:`repro.obs.collect`.
    """
    global _current, ACTIVE
    previous = _current
    armed = Guard(budget, token)
    _current = armed
    ACTIVE = True
    try:
        yield armed
    finally:
        _current = previous
        ACTIVE = previous is not None
        armed.release()
