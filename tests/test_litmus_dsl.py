"""Tests for the Python DSL builders."""

import pytest

from repro.events import Pointer
from repro.litmus import dsl
from repro.litmus.ast import (
    BinOp,
    Const,
    Fence,
    If,
    LitmusError,
    Load,
    Program,
    Reg,
    Rmw,
    Store,
)


class TestAccessBuilders:
    def test_read_once(self):
        load = dsl.read_once("r0", "x")
        assert load == Load("r0", Const(Pointer("x")), "once")

    def test_load_acquire(self):
        assert dsl.load_acquire("r0", "x").tag == "acquire"

    def test_write_once_with_register_value(self):
        store = dsl.write_once("y", "r1")
        assert store.value == Reg("r1")

    def test_write_once_with_int(self):
        assert dsl.write_once("y", 3).value == Const(3)

    def test_write_once_with_pointer_value(self):
        assert dsl.write_once("p", dsl.ptr("x")).value == Const(Pointer("x"))

    def test_store_release(self):
        assert dsl.store_release("y", 1).tag == "release"

    def test_address_via_register(self):
        load = dsl.read_once("r1", dsl.reg("r0"))
        assert load.addr == Reg("r0")

    def test_rcu_dereference_flag(self):
        assert dsl.rcu_dereference("r0", "p").rb_dep

    def test_rcu_assign_pointer_is_release(self):
        assert dsl.rcu_assign_pointer("p", dsl.ptr("x")).tag == "release"


class TestRmwBuilders:
    @pytest.mark.parametrize(
        "builder,variant",
        [
            (dsl.xchg, "xchg"),
            (dsl.xchg_relaxed, "xchg_relaxed"),
            (dsl.xchg_acquire, "xchg_acquire"),
            (dsl.xchg_release, "xchg_release"),
        ],
    )
    def test_variants(self, builder, variant):
        rmw = builder("r0", "x", 1)
        assert isinstance(rmw, Rmw) and rmw.variant == variant

    def test_unknown_variant_rejected(self):
        with pytest.raises(LitmusError):
            Rmw("r0", Const(Pointer("x")), Const(1), "bogus")

    def test_atomic_inc_return(self):
        rmw = dsl.atomic_inc_return("r0", "x")
        assert rmw.new_value == BinOp("+", Reg("r0"), Const(1))

    def test_spin_lock_unlock(self):
        lock = dsl.spin_lock("l")
        assert lock.variant == "xchg_acquire"
        assert lock.require_read_value == 0
        unlock = dsl.spin_unlock("l")
        assert unlock.tag == "release" and unlock.value == Const(0)


class TestProgramBuilders:
    def test_program_requires_threads(self):
        with pytest.raises(LitmusError):
            dsl.program("empty")

    def test_locations_include_init_and_code(self):
        program = dsl.program(
            "t",
            dsl.thread(dsl.write_once("x", 1)),
            init={"q": 0},
        )
        assert program.locations() == ["q", "x"]

    def test_locations_include_pointer_targets(self):
        program = dsl.program(
            "t", dsl.thread(dsl.write_once("p", dsl.ptr("target")))
        )
        assert "target" in program.locations()

    def test_initial_value_defaults_to_zero(self):
        program = dsl.program("t", dsl.thread(dsl.write_once("x", 1)))
        assert program.initial_value("x") == 0

    def test_exists_regs_builder(self):
        condition = dsl.exists_regs((0, "r0", 1), (1, "r1", 0))
        from repro.litmus.outcomes import And, Exists

        assert isinstance(condition, Exists)
        assert isinstance(condition.body, And)

    def test_if_then(self):
        branch = dsl.if_then(dsl.eq("r0", 1), [dsl.write_once("y", 1)])
        assert isinstance(branch, If)
        assert len(branch.then) == 1 and not branch.orelse


class TestExpressionHelpers:
    def test_eq_ne_add(self):
        assert dsl.eq("r0", 1).op == "=="
        assert dsl.ne("r0", 1).op == "!="
        assert dsl.add("r0", 1).op == "+"

    def test_bool_coerced_to_int(self):
        assert dsl.write_once("x", True).value == Const(1)


class TestExpressionSemantics:
    def test_pointer_comparison(self):
        op = BinOp("==", Const(Pointer("x")), Const(Pointer("x")))
        assert op.apply(Pointer("x"), Pointer("x")) == 1
        assert op.apply(Pointer("x"), Pointer("y")) == 0

    def test_pointer_arithmetic_false_dep_only(self):
        op = BinOp("+", Const(Pointer("x")), Const(0))
        assert op.apply(Pointer("x"), 0) == Pointer("x")
        with pytest.raises(LitmusError):
            op.apply(Pointer("x"), 1)

    def test_pointer_forbidden_in_other_ops(self):
        with pytest.raises(LitmusError):
            BinOp("&", Const(0), Const(0)).apply(Pointer("x"), 1)

    def test_unary_not_on_pointer_is_false(self):
        from repro.litmus.ast import UnOp

        assert UnOp("!", Const(0)).apply(Pointer("x")) == 0

    def test_bitwise_ops(self):
        assert BinOp("^", Const(0), Const(0)).apply(0x10001, 0x10000) == 1
        assert BinOp("&", Const(0), Const(0)).apply(0x10001, 0xFFFF) == 1
        assert BinOp("|", Const(0), Const(0)).apply(1, 2) == 3
