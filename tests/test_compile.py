"""Tests for the LK -> architecture compiler."""

import pytest

from repro.hardware import CompileError, compile_program, get_arch
from repro.hardware.archspec import ARCHITECTURES, TABLE5_ARCHS
from repro.litmus import dsl, library
from repro.litmus.ast import Fence, Load, Rmw, Store


def compile_thread(instructions, arch_name, rcu="keep"):
    program = dsl.program("t", dsl.thread(*instructions))
    compiled = compile_program(program, get_arch(arch_name), rcu=rcu)
    return list(compiled.threads[0].body)


class TestFenceMapping:
    def test_x86_mb_is_mfence(self):
        (fence,) = compile_thread([dsl.smp_mb()], "x86")
        assert isinstance(fence, Fence) and fence.tag == "mfence"

    def test_x86_rmb_wmb_compile_away(self):
        assert compile_thread([dsl.smp_rmb()], "x86") == []
        assert compile_thread([dsl.smp_wmb()], "x86") == []

    def test_power_fences(self):
        assert compile_thread([dsl.smp_mb()], "Power8")[0].tag == "sync"
        assert compile_thread([dsl.smp_wmb()], "Power8")[0].tag == "lwsync"
        assert compile_thread([dsl.smp_rmb()], "Power8")[0].tag == "lwsync"

    def test_armv8_fences(self):
        assert compile_thread([dsl.smp_mb()], "ARMv8")[0].tag == "dmb"
        assert compile_thread([dsl.smp_rmb()], "ARMv8")[0].tag == "dmb-ld"
        assert compile_thread([dsl.smp_wmb()], "ARMv8")[0].tag == "dmb-st"

    def test_rb_dep_only_alpha(self):
        # The raison d'être of smp_read_barrier_depends (Section 3.2.2).
        assert compile_thread([dsl.smp_read_barrier_depends()], "Alpha")[0].tag == "alpha-mb"
        for arch in ("x86", "Power8", "ARMv8", "ARMv7"):
            assert compile_thread([dsl.smp_read_barrier_depends()], arch) == []


class TestAcquireRelease:
    def test_x86_acquire_is_plain_load(self):
        (load,) = compile_thread([dsl.load_acquire("r0", "x")], "x86")
        assert isinstance(load, Load) and load.tag == "plain"

    def test_power_acquire_is_load_lwsync(self):
        load, fence = compile_thread([dsl.load_acquire("r0", "x")], "Power8")
        assert load.tag == "plain" and fence.tag == "lwsync"

    def test_power_release_is_lwsync_store(self):
        fence, store = compile_thread([dsl.store_release("x", 1)], "Power8")
        assert fence.tag == "lwsync" and store.tag == "plain"

    def test_armv8_acquire_release_instructions(self):
        (load,) = compile_thread([dsl.load_acquire("r0", "x")], "ARMv8")
        assert load.tag == "ldar"
        (store,) = compile_thread([dsl.store_release("x", 1)], "ARMv8")
        assert store.tag == "stlr"

    def test_armv7_acquire_uses_full_dmb(self):
        # "ARMv7 implements smp_load_acquire with a full fence for lack of
        # better means" (Section 3.2.2).
        load, fence = compile_thread([dsl.load_acquire("r0", "x")], "ARMv7")
        assert load.tag == "plain" and fence.tag == "dmb"

    def test_rcu_dereference_on_alpha_gets_barrier(self):
        body = compile_thread([dsl.rcu_dereference("r0", "p")], "Alpha")
        assert body[0].tag == "plain"
        assert body[1].tag == "alpha-mb"


class TestRmwCompilation:
    def test_full_xchg_bracketed(self):
        body = compile_thread([dsl.xchg("r0", "x", 1)], "Power8")
        assert body[0].tag == "sync"
        assert isinstance(body[1], Rmw) and body[1].variant == "xchg_relaxed"
        assert body[2].tag == "sync"

    def test_relaxed_xchg_bare(self):
        body = compile_thread([dsl.xchg_relaxed("r0", "x", 1)], "ARMv8")
        assert len(body) == 1 and isinstance(body[0], Rmw)

    def test_spin_lock_keeps_required_value(self):
        body = compile_thread([dsl.spin_lock("l")], "ARMv8")
        rmw = next(i for i in body if isinstance(i, Rmw))
        assert rmw.require_read_value == 0

    def test_armv8_acquire_rmw_approximation(self):
        body = compile_thread([dsl.xchg_acquire("r0", "x", 1)], "ARMv8")
        assert body[-1].tag == "dmb-ld"


class TestRcuHandling:
    def test_rcu_kept_by_default(self):
        body = compile_thread([dsl.rcu_read_lock(), dsl.rcu_read_unlock()], "Power8")
        assert [f.tag for f in body] == ["rcu-lock", "rcu-unlock"]

    def test_rcu_error_mode(self):
        with pytest.raises(CompileError):
            compile_thread([dsl.synchronize_rcu()], "Power8", rcu="error")

    def test_bad_rcu_mode_rejected(self):
        program = dsl.program("t", dsl.thread(dsl.smp_mb()))
        with pytest.raises(ValueError):
            compile_program(program, get_arch("x86"), rcu="whatever")


class TestWholePrograms:
    @pytest.mark.parametrize("arch", sorted(ARCHITECTURES))
    def test_whole_corpus_compiles(self, arch):
        spec = get_arch(arch)
        for name in library.all_names():
            compiled = compile_program(library.get(name), spec, rcu="keep")
            assert compiled.name == f"{name}@{spec.name}"
            assert compiled.num_threads == library.get(name).num_threads

    def test_branches_compiled_recursively(self):
        program = library.get("LB+ctrl+mb")
        compiled = compile_program(program, get_arch("Power8"))
        from repro.litmus.ast import If

        branch = next(
            i for i in compiled.threads[0].body if isinstance(i, If)
        )
        assert branch.then  # body preserved

    def test_condition_and_init_preserved(self):
        program = library.get("MP+wmb+rmb")
        compiled = compile_program(program, get_arch("x86"))
        assert compiled.condition is program.condition
        assert compiled.init == program.init
