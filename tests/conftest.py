"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cat import load_model
from repro.litmus import library
from repro.lkmm import LinuxKernelModel


@pytest.fixture(scope="session")
def lkmm():
    """The native-Python LK model."""
    return LinuxKernelModel()


@pytest.fixture(scope="session")
def lkmm_cat():
    """The LK model as interpreted from lkmm.cat."""
    return load_model("lkmm")


@pytest.fixture(scope="session")
def c11():
    return load_model("c11")


@pytest.fixture(scope="session")
def mp_program():
    return library.get("MP+wmb+rmb")


@pytest.fixture(scope="session")
def sb_program():
    return library.get("SB")
