"""Intraprocedural static analysis over litmus thread ASTs.

Layers, bottom up:

* :mod:`repro.analysis.flow.cfg` — lowering of structured thread bodies
  to acyclic control-flow graphs;
* :mod:`repro.analysis.flow.dataflow` — a generic forward/backward
  worklist solver over small join-semilattices;
* :mod:`repro.analysis.flow.analyses` — reaching definitions, liveness,
  constant propagation, and the path-sensitive RCU/lock region analysis;
* :mod:`repro.analysis.flow.checkers` — the ``repro-lint`` checkers built
  on top (RCU discipline, lock discipline, fragile dependencies, precise
  uninit/dead-store lint).
"""

from repro.analysis.flow.cfg import BasicBlock, Cfg, Point, build_cfg
from repro.analysis.flow.dataflow import (
    BACKWARD,
    DataflowAnalysis,
    DataflowResult,
    FORWARD,
    solve,
)
from repro.analysis.flow.analyses import (
    ConstantPropagation,
    Liveness,
    ReachingDefinitions,
    RegionAnalysis,
    RegionState,
    UNINIT,
    VARIES,
    cfg_registers,
    environment,
    expr_registers,
    fold_expr,
    instruction_def,
    instruction_uses,
    possibly_uninit,
    program_lock_locations,
    static_location,
)
from repro.analysis.flow.checkers import (
    CHECKERS,
    MAX_RCU_NESTING,
    check_dataflow,
    check_dependencies,
    check_locks,
    check_rcu,
    lint_program_flow,
)

__all__ = [
    "BasicBlock",
    "Cfg",
    "Point",
    "build_cfg",
    "BACKWARD",
    "FORWARD",
    "DataflowAnalysis",
    "DataflowResult",
    "solve",
    "ConstantPropagation",
    "Liveness",
    "ReachingDefinitions",
    "RegionAnalysis",
    "RegionState",
    "UNINIT",
    "VARIES",
    "cfg_registers",
    "environment",
    "expr_registers",
    "fold_expr",
    "instruction_def",
    "instruction_uses",
    "possibly_uninit",
    "program_lock_locations",
    "static_location",
    "CHECKERS",
    "MAX_RCU_NESTING",
    "check_dataflow",
    "check_dependencies",
    "check_locks",
    "check_rcu",
    "lint_program_flow",
]
