"""repro.kernel — the fast execution kernel.

A performance layer under the public ``Relation``/``EventSet``/
``run_litmus`` APIs, with no behavioural change:

* :mod:`repro.kernel.bitrel` — integer-indexed relations: events mapped to
  dense indices once per universe, relations held as adjacency bitset
  rows, operators as word-parallel integer arithmetic;
* :mod:`repro.kernel.skeleton` — per-trace incremental checking: the
  trace-invariant structure of candidate executions, computed once per
  trace combination and shared across all rf×co candidates;
* :mod:`repro.kernel.parallel` — a ``multiprocessing`` driver sharding
  trace combinations (and whole programs) over a worker pool, surfaced as
  ``--jobs N`` on the CLIs and ``jobs=N`` on the ``run_litmus``/
  ``verdicts`` APIs;
* :mod:`repro.kernel.config` — backend selection
  (``REPRO_RELATION_BACKEND=bitset|frozenset``, default ``bitset``) and
  the incremental-checking switch (``REPRO_INCREMENTAL=1|0``).

The original frozenset implementation is retained as the reference
backend; ``tests/test_kernel_equiv.py`` asserts observational equivalence
between every backend/driver combination.
"""

from repro.kernel.config import (
    BITSET,
    FROZENSET,
    backend,
    incremental_enabled,
    set_backend,
    set_incremental,
    use_backend,
    use_incremental,
)

__all__ = [
    "BITSET",
    "FROZENSET",
    "backend",
    "incremental_enabled",
    "set_backend",
    "set_incremental",
    "use_backend",
    "use_incremental",
]
