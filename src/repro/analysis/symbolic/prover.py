"""The symbolic critical-cycle prover: verdicts before enumeration.

Litmus verdicts over the stock library and the diy corpus are dominated
by tests deliberately built around one *critical cycle* (Section 4 of
the paper): communication edges pinned by the final-state condition,
program-order edges between their endpoints.  Whether the model forbids
the outcome usually hinges on that single cycle — so this module decides
it *statically*, before (and usually instead of) enumerating the
candidate-execution space:

* **Forbid** — the condition body is unsatisfiable over the skeleton
  (``unsat-condition``), or every coherence scenario of every
  condition-satisfying execution contains a cycle provably inside an
  acyclicity axiom of the model (``critical-cycle``).  Both facts are
  established by under-approximating entailment (:mod:`.match`), so a
  Forbid is a proof, not a heuristic.
* **Allow** — a witness candidate synthesised from the condition
  footprint (threads restricted to traces matching the pinned register
  values) satisfies the condition and is *confirmed by the kernel
  itself* (``model.allows``) — exact by construction.
* **None** — anything else; the caller falls back to full enumeration.

The Forbid direction needs the model's compiled relational IR
(:mod:`repro.analysis.catir.compile`); native Python models still get
the ``unsat-condition`` and witness paths.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cat import CatError
from repro.guard import core as _guard
from repro.litmus.ast import Program
from repro.litmus.outcomes import Exists, Forall, NotExists
from repro.model import Model
from repro.obs import core as _obs

from repro.analysis.catir.compile import CompiledModel, compile_statements
from repro.analysis.symbolic.footprint import (
    Footprint,
    guaranteed_edges,
    resolve_footprint,
    scenarios,
)
from repro.analysis.symbolic.match import EdgeSet, Key, Matcher, violated_check
from repro.analysis.symbolic.skeleton import (
    ProgramSkeleton,
    Unsupported,
    extract_skeleton,
)

ALLOW = "Allow"
FORBID = "Forbid"

#: Caps on the static search itself (the point is to be *cheap*).
MAX_CYCLES = 128
MAX_CYCLE_LEN = 12
MAX_WITNESS_CANDIDATES = 256


@dataclass(frozen=True)
class StaticDecision:
    """A statically established verdict and its provenance."""

    verdict: str  # ALLOW or FORBID
    #: ``unsat-condition`` / ``critical-cycle`` / ``witness-confirmed``.
    reason: str
    detail: str = ""

    def describe(self) -> str:
        suffix = f" [{self.detail}]" if self.detail else ""
        return f"{self.verdict} ({self.reason}){suffix}"


# ---------------------------------------------------------------------------
# Model IR


#: Per-process compiled-IR cache keyed on the CatModel token; ``None``
#: records "this model does not lower" so it is attempted only once.
_COMPILED: Dict[int, Optional[CompiledModel]] = {}


def compiled_model(model: Model) -> Optional[CompiledModel]:
    """The model's relational IR, or ``None`` for models that have no cat
    statement list or whose cat dialect the IR compiler rejects."""
    token = getattr(model, "_token", None)
    flattened = getattr(model, "_flattened", None)
    if token is None or flattened is None:
        return None
    if token in _COMPILED:
        return _COMPILED[token]
    try:
        compiled = compile_statements(model._flattened(), model.name)
    except CatError:
        compiled = None
    _COMPILED[token] = compiled
    return compiled


# ---------------------------------------------------------------------------
# Cycle enumeration


def _communication_cycles(
    skeleton: ProgramSkeleton,
    edges: EdgeSet,
    max_cycles: int = MAX_CYCLES,
    max_len: int = MAX_CYCLE_LEN,
) -> Iterator[List[Key]]:
    """Candidate critical cycles: alternating communication steps (from
    ``edges``) and forward program-order steps between their endpoints.

    Consecutive po steps are never taken (po is transitive, so such a
    cycle is subsumed by a shorter one), and each cycle is emitted once,
    anchored at its smallest participating key.
    """
    comm: Dict[Key, set] = {}
    for a, b in edges.rf | edges.co | edges.fr:
        comm.setdefault(a, set()).add(b)
        comm.setdefault(b, set())
    nodes = sorted(comm)
    po_next: Dict[Key, List[Key]] = {
        a: [b for b in nodes if b[0] == a[0] and b[1] > a[1]] for a in nodes
    }
    emitted = 0

    def walk(
        start: Key, current: Key, path: List[Key], last_po: bool, first_po: bool
    ) -> Iterator[List[Key]]:
        nonlocal emitted
        if emitted >= max_cycles or len(path) > max_len:
            return
        for nxt in sorted(comm[current]):
            if nxt == start:
                if len(path) >= 2:
                    emitted += 1
                    yield list(path)
                    if emitted >= max_cycles:
                        return
            elif nxt > start and nxt not in path:
                yield from walk(start, nxt, path + [nxt], False, first_po)
        if not last_po:
            for nxt in po_next[current]:
                if nxt == start:
                    # Closing with po after opening with po would make
                    # two consecutive po steps around the wrap.
                    if len(path) >= 2 and not first_po:
                        emitted += 1
                        yield list(path)
                        if emitted >= max_cycles:
                            return
                elif nxt > start and nxt not in path:
                    yield from walk(start, nxt, path + [nxt], True, first_po)

    for start in nodes:
        for nxt in sorted(comm[start]):
            if nxt > start:
                yield from walk(start, nxt, [start, nxt], False, False)
        for nxt in po_next[start]:
            if nxt > start:
                yield from walk(start, nxt, [start, nxt], True, True)


def _cycle_positions(skeleton: ProgramSkeleton, cycle: Sequence[Key]):
    """The cycle's accesses in order, with the skeleton fences interposed
    along each forward program-order link (so ``seq`` compositions like
    ``po ; [F & Mb] ; po`` find their intermediate position)."""
    positions = []
    count = len(cycle)
    for i, key in enumerate(cycle):
        event = skeleton.event(key)
        positions.append(event)
        nxt = skeleton.event(cycle[(i + 1) % count])
        if event.tid == nxt.tid and event.index < nxt.index:
            positions.extend(skeleton.fences_between(event, nxt))
    return positions


#: Order-table memo: ``violated_check`` keyed by (compiled model,
#: canonical cycle shape).  The matcher consults nothing beyond what the
#: shape captures, so equal shapes provably yield equal answers — and the
#: diy-generated corpus draws its cycles from a small shape vocabulary,
#: which turns entailment from the dominant cost into a dict lookup.
_SHAPE_MEMO: Dict[Tuple[int, tuple], Optional[str]] = {}
_SHAPE_CAP = 65536


def _cycle_shape(
    skeleton: ProgramSkeleton, edges: EdgeSet, positions
) -> tuple:
    """A canonical fingerprint of one cyclic matcher query.

    Complete by construction: the matcher reads, of each position, only
    its kind/tag, thread identity, program-order rank, dependency links,
    location equality, interposed-fence tags, and pinned-edge membership
    — all of which are captured here (threads and locations renamed by
    first appearance, the whole ring normalised over rotations, since
    ``violated_check`` tries every rotation anyway).
    """
    count = len(positions)
    pair = {}
    for i, a in enumerate(positions):
        for j, b in enumerate(positions):
            if i == j:
                continue
            same_tid = a.tid == b.tid
            fences: tuple = ()
            if same_tid and a.index < b.index:
                fences = tuple(
                    sorted(
                        {f.tag or "" for f in skeleton.fences_between(a, b)}
                    )
                )
            pair[(i, j)] = (
                same_tid and a.index < b.index,
                same_tid and a.index in b.addr_deps,
                same_tid and a.index in b.data_deps,
                same_tid and a.index in b.ctrl_deps,
                fences,
                (a.key, b.key) in edges.rf,
                (a.key, b.key) in edges.co,
                (a.key, b.key) in edges.fr,
            )
    descs = []
    for r in range(count):
        tids: Dict[int, int] = {}
        locs: Dict[str, int] = {}
        desc = []
        for i in range(count):
            event = positions[(i + r) % count]
            desc.append(
                (
                    tids.setdefault(event.tid, len(tids)),
                    event.kind,
                    event.tag or "",
                    -1
                    if event.loc is None
                    else locs.setdefault(event.loc, len(locs)),
                )
            )
        descs.append(tuple(desc))
    # The event descriptors almost always single out the canonical
    # rotation; the O(n^2) pair tuple is built only for the ties.
    lead = min(descs)
    best = None
    for r in range(count):
        if descs[r] != lead:
            continue
        candidate = tuple(
            pair[((i + r) % count, (j + r) % count)]
            for i in range(count)
            for j in range(count)
            if i != j
        )
        if best is None or candidate < best:
            best = candidate
    return (lead, best)


def _forbidden_under(
    skeleton: ProgramSkeleton, edges: EdgeSet, compiled: CompiledModel
) -> Optional[str]:
    """A violated-check label when some candidate cycle over ``edges`` is
    provably inside an acyclicity axiom, else ``None``."""
    for cycle in _communication_cycles(skeleton, edges):
        positions = _cycle_positions(skeleton, cycle)
        key = (id(compiled), _cycle_shape(skeleton, edges, positions))
        if key in _SHAPE_MEMO:
            label = _SHAPE_MEMO[key]
        else:
            matcher = Matcher(
                skeleton, edges, positions, period=len(positions)
            )
            label = violated_check(matcher, compiled.checks)
            if len(_SHAPE_MEMO) >= _SHAPE_CAP:
                _SHAPE_MEMO.clear()
            _SHAPE_MEMO[key] = label
        if label is not None:
            return label
    return None


# ---------------------------------------------------------------------------
# Witness synthesis (the Allow direction)


def _find_witness(
    model: Model,
    program: Program,
    skeleton: ProgramSkeleton,
    footprint: Footprint,
    require_sc_per_location: bool,
) -> bool:
    """Synthesise and confirm one allowed, condition-satisfying candidate.

    Thread traces are pre-filtered to those whose final registers match
    the condition's pinned values, so the candidates examined are exactly
    the ones that can be witnesses.  The model's own ``allows`` makes the
    confirmation exact.  A tripped ambient guard aborts the attempt
    (returning False); the fallback enumeration then re-trips it at its
    own safepoint and degrades normally.
    """
    from repro.executions.enumerate import _executions_of_traces
    from repro.executions.thread_sem import (
        enumerate_thread_traces,
        possible_value_sets,
    )

    condition = program.condition
    try:
        value_sets = possible_value_sets(program)
        per_thread = []
        for tid, thread in enumerate(program.threads):
            pins = {
                reg: value
                for (pin_tid, reg), value in footprint.reg_values.items()
                if pin_tid == tid
            }
            traces = [
                trace
                for trace in enumerate_thread_traces(thread, value_sets)
                if all(
                    trace.final_regs.get(reg) == value
                    for reg, value in pins.items()
                )
            ]
            if not traces:
                return False
            per_thread.append(traces)
        locations = program.locations()
        examined = 0
        for combo in itertools.product(*per_thread):
            for execution in _executions_of_traces(
                program, locations, combo, require_sc_per_location
            ):
                examined += 1
                if condition.evaluate(execution.final_state) and model.allows(
                    execution
                ):
                    return True
                if examined >= MAX_WITNESS_CANDIDATES:
                    return False
    except _guard.GuardStop:
        return False
    return False


# ---------------------------------------------------------------------------
# The decision procedure


def decide(
    model: Model,
    program: Program,
    require_sc_per_location: bool = False,
) -> Optional[StaticDecision]:
    """Statically decide ``program`` under ``model``, or ``None``.

    Sound by construction: a Forbid is a proof over every
    condition-satisfying execution, an Allow is a kernel-confirmed
    witness.  ``forall`` conditions (whose verdict quantifies over
    non-witnesses too) always fall back.

    Owns the observability counters (``static.decided`` /
    ``static.witness_confirmed`` / ``static.fallback``) so every caller
    — the batched drivers, ``repro-herd --static-only``, the coverage
    report — surfaces them uniformly under ``--profile``.
    """
    decision = _decide(model, program, require_sc_per_location)
    if _obs.ENABLED:
        if decision is None:
            _obs.count("static.fallback")
        else:
            _obs.count("static.decided")
            if decision.reason == "witness-confirmed":
                _obs.count("static.witness_confirmed")
    return decision


def _decide(
    model: Model,
    program: Program,
    require_sc_per_location: bool,
) -> Optional[StaticDecision]:
    condition = program.condition
    if condition is None or not isinstance(condition, (Exists, NotExists)):
        return None
    try:
        skeleton = extract_skeleton(program)
        footprint = resolve_footprint(skeleton, condition.body)
    except Unsupported:
        return None
    if footprint.trivially_false:
        return StaticDecision(
            FORBID, "unsat-condition", "no execution satisfies the condition"
        )
    compiled = compiled_model(model)
    if compiled is not None:
        guaranteed = guaranteed_edges(skeleton, footprint)
        label = _forbidden_under(skeleton, guaranteed, compiled)
        if label is not None:
            return StaticDecision(FORBID, "critical-cycle", label)
        cases = scenarios(skeleton, footprint)
        if cases != [guaranteed]:
            labels = []
            for case in cases:
                label = _forbidden_under(skeleton, case, compiled)
                if label is None:
                    labels = None
                    break
                labels.append(label)
            if labels is not None:
                return StaticDecision(
                    FORBID,
                    "critical-cycle",
                    "; ".join(sorted(set(labels))),
                )
    if _find_witness(
        model, program, skeleton, footprint, require_sc_per_location
    ):
        return StaticDecision(ALLOW, "witness-confirmed")
    return None


def static_verdict(
    model: Model,
    program: Program,
    require_sc_per_location: bool = False,
) -> Optional[str]:
    """The statically decided verdict string, or ``None`` (fall back).

    This is the entry point the batched drivers call; the counters live
    in :func:`decide` itself.
    """
    decision = decide(
        model, program, require_sc_per_location=require_sc_per_location
    )
    return None if decision is None else decision.verdict
