"""Regenerate the static-verdict snapshot (``tests/data/static_verdicts.json``).

The snapshot freezes what the symbolic critical-cycle prover
(:mod:`repro.analysis.symbolic`) decides for the entire built-in litmus
library under the four golden models: ``Decided-Forbid`` /
``Decided-Allow`` per statically proved cell, ``Unknown`` per fallback
cell.  ``tests/test_static_verdicts.py`` holds the matching drift test —
so a matcher or footprint change that silently *loses* coverage (or,
worse, flips a proof) fails loudly with the exact cells named.

Run after an intentional prover/fragment change, then review the diff::

    PYTHONPATH=src python benchmarks/regen_static_verdicts.py
    git diff tests/data/static_verdicts.json
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.symbolic import decide  # noqa: E402
from repro.cat import load_model  # noqa: E402
from repro.litmus import library  # noqa: E402

SNAPSHOT_PATH = REPO_ROOT / "tests" / "data" / "static_verdicts.json"

#: cat files frozen by the snapshot, in table-column order (matches
#: tests/data/verdicts_golden.json).
MODELS = ("lkmm", "c11", "sc", "tso")

UNKNOWN = "Unknown"


def compute_table():
    models = [load_model(name) for name in MODELS]
    table = {}
    for test_name in sorted(library.all_names()):
        program = library.get(test_name)
        row = {}
        for model in models:
            decision = decide(model, program, require_sc_per_location=True)
            row[model.name] = (
                UNKNOWN if decision is None else f"Decided-{decision.verdict}"
            )
        table[test_name] = row
    return table


def main() -> int:
    table = compute_table()
    snapshot = {
        "models": list(MODELS),
        "require_sc_per_location": True,
        "static": table,
    }
    SNAPSHOT_PATH.parent.mkdir(parents=True, exist_ok=True)
    SNAPSHOT_PATH.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    )
    decided = sum(
        1 for row in table.values() for cell in row.values() if cell != UNKNOWN
    )
    print(
        f"wrote {len(table)} tests x {len(MODELS)} models to {SNAPSHOT_PATH} "
        f"({decided} cells decided)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
