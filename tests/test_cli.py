"""Tests for the command-line tools."""

import pytest

from repro.tools.cli import diy_main, herd_main, klitmus_main


class TestHerdCli:
    def test_library_test_by_name(self, capsys):
        assert herd_main(["--model", "lkmm-native", "MP+wmb+rmb"]) == 0
        out = capsys.readouterr().out
        assert "MP+wmb+rmb" in out and "Forbid" in out

    def test_cat_model_by_name(self, capsys):
        assert herd_main(["--model", "c11", "RWC+mbs"]) == 0
        assert "Allow" in capsys.readouterr().out

    def test_file_path(self, tmp_path, capsys):
        litmus = tmp_path / "t.litmus"
        litmus.write_text(
            "C filetest\n{ x=0; }\n"
            "P0(int *x) { WRITE_ONCE(*x, 1); }\n"
            "P1(int *x) { int r0 = READ_ONCE(*x); }\n"
            "exists (1:r0=1)\n"
        )
        assert herd_main(["--model", "lkmm-native", str(litmus)]) == 0
        assert "filetest" in capsys.readouterr().out

    def test_explain_flag(self, capsys):
        assert herd_main(
            ["--model", "lkmm-native", "--explain", "SB+mbs"]
        ) == 0
        out = capsys.readouterr().out
        assert "violated axiom" in out

    def test_multiple_tests(self, capsys):
        assert herd_main(["--model", "lkmm-native", "SB", "MP"]) == 0
        out = capsys.readouterr().out
        assert out.count("Allow") == 2


class TestKlitmusCli:
    def test_basic(self, capsys):
        assert klitmus_main(
            ["--arch", "x86", "--runs", "200", "SB"]
        ) == 0
        out = capsys.readouterr().out
        assert "SB on x86" in out and "/200" in out

    def test_histogram(self, capsys):
        assert klitmus_main(
            ["--arch", "Power8", "--runs", "100", "--histogram", "MP"]
        ) == 0
        assert "r0" in capsys.readouterr().out


class TestDiyCli:
    def test_generate_prints_litmus(self, capsys):
        assert diy_main(["Rfe", "RmbdRR", "Fre", "WmbdWW"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("C ")
        assert "P0(" in out and "P1(" in out and "exists" in out

    def test_generate_and_check(self, capsys):
        assert diy_main(["--check", "Rfe", "RmbdRR", "Fre", "WmbdWW"]) == 0
        assert "Forbid" in capsys.readouterr().out

    def test_output_file_round_trips(self, tmp_path, capsys):
        out_file = tmp_path / "generated.litmus"
        assert diy_main(
            ["-o", str(out_file), "Rfe", "RmbdRR", "Fre", "WmbdWW"]
        ) == 0
        # The written file is a valid litmus test usable by repro-herd.
        assert herd_main(["--model", "lkmm-native", str(out_file)]) == 0
        assert "Forbid" in capsys.readouterr().out


class TestHerdStates:
    def test_states_flag(self, capsys):
        assert herd_main(
            ["--model", "lkmm-native", "--states", "MP+wmb+rmb"]
        ) == 0
        out = capsys.readouterr().out
        assert "States 3" in out
        assert "Observation MP+wmb+rmb Never" in out
