"""The Linux-kernel memory model, in Python.

This is a line-by-line rendering of the paper's formal definitions:

* Figure 3 — the core axioms::

      acyclic(po-loc | com)          (Scpv)
      empty(rmw & (fre ; coe))       (At)
      acyclic(hb)                    (Hb)
      acyclic(pb)                    (Pb)

* Figure 8 — the relations::

      dep          := addr | data
      rwdep        := (dep | ctrl) & (R x W)
      overwrite    := co | fr
      to-w         := rwdep | (overwrite & int)
      rrdep        := addr | (dep ; rfi)
      strong-rrdep := rrdep+ & rb-dep
      to-r         := strong-rrdep | rfi-rel-acq
      strong-fence := mb                      (| gp with RCU, Figure 12)
      fence        := strong-fence | po-rel | wmb | rmb | acq-po
      ppo          := rrdep* ; (to-r | to-w | fence)
      cumul-fence  := A-cumul(strong-fence | po-rel) | wmb
      prop         := (overwrite & ext)? ; cumul-fence* ; rfe?
      hb           := ((prop \\ id) & int) | ppo | rfe
      pb           := prop ; strong-fence ; hb*

  where ``A-cumul(r) := rfe? ; r``, and the auxiliary fence relations are:
  ``mb``/``rmb``/``wmb``/``rb-dep`` pair events separated by the
  corresponding fence (``rmb``, ``wmb`` and ``rb-dep`` restricted to
  read/write pairs as described in Section 3), ``acq-po`` pairs an acquire
  with any po-later event, ``po-rel`` pairs any event with a po-later
  release, and ``rfi-rel-acq`` is an internal reads-from from a release to
  an acquire.

* Figure 12 — the RCU axiom::

      gp        := (po & (_ x Sync)) ; po?
      rscs      := po ; crit^-1 ; po?
      link      := hb* ; pb* ; prop
      gp-link   := gp ; link
      rscs-link := rscs ; link
      rec rcu-path := gp-link | (rcu-path ; rcu-path)
                    | (gp-link ; rscs-link) | (rscs-link ; gp-link)
                    | (gp-link ; rcu-path ; rscs-link)
                    | (rscs-link ; rcu-path ; gp-link)
      irreflexive(rcu-path)

  with ``strong-fence := mb | gp`` feeding back into the core relations,
  so that ``synchronize_rcu`` can be used wherever ``smp_mb`` can.
"""

from __future__ import annotations

from functools import cached_property
from typing import Dict, List, Optional, Tuple

from repro.events import (
    ACQUIRE,
    Event,
    MB,
    RB_DEP,
    RCU_LOCK,
    RCU_UNLOCK,
    RELEASE,
    RMB,
    SYNC_RCU,
    WMB,
)
from repro.executions.candidate import CandidateExecution
from repro.model import AxiomViolation, Model, ModelResult
from repro.obs import core as _obs
from repro.relations import EventSet, Relation, least_fixpoint


class LkmmRelations:
    """All derived relations of Figures 8 and 12 for one execution.

    Exposed as cached properties so explanation tooling
    (:mod:`repro.lkmm.explain`) can inspect exactly the relations the model
    used.

    The rf/co-independent relations (fence relations, ``gp``, ``crit``,
    ``rscs``, dependency relations) are additionally memoised on the
    execution's shared trace skeleton, so they are computed once per trace
    combination rather than once per rf×co candidate.
    """

    def __init__(self, execution: CandidateExecution, with_rcu: bool = True):
        self.x = execution
        self.with_rcu = with_rcu

    def _shared(self, name: str, compute) -> Relation:
        """Memoise an rf/co-independent relation on the trace skeleton."""
        return self.x.shared_memo(("lkmm", name), compute)

    # -- auxiliary fence relations (Section 3) ---------------------------

    def fencerel(self, tag: str) -> Relation:
        """Pairs of events separated in po by a fence tagged ``tag``."""

        def compute() -> Relation:
            x = self.x
            fences = x.tagged(tag) & x.fences
            before = x.po.restrict(range_=fences)
            after = x.po.restrict(domain=fences)
            return before.sequence(after)

        return self._shared(("fencerel", tag), compute)

    @cached_property
    def mb(self) -> Relation:
        return self.fencerel(MB)

    @cached_property
    def rmb(self) -> Relation:
        x = self.x
        return self._shared(
            "rmb", lambda: self.fencerel(RMB) & (x.reads * x.reads)
        )

    @cached_property
    def wmb(self) -> Relation:
        x = self.x
        return self._shared(
            "wmb", lambda: self.fencerel(WMB) & (x.writes * x.writes)
        )

    @cached_property
    def rb_dep(self) -> Relation:
        x = self.x
        return self._shared(
            "rb_dep", lambda: self.fencerel(RB_DEP) & (x.reads * x.reads)
        )

    @cached_property
    def acq_po(self) -> Relation:
        x = self.x
        return self._shared(
            "acq_po", lambda: x.tagged(ACQUIRE).identity().sequence(x.po)
        )

    @cached_property
    def po_rel(self) -> Relation:
        x = self.x
        return self._shared(
            "po_rel", lambda: x.po.sequence(x.tagged(RELEASE).identity())
        )

    @cached_property
    def rfi_rel_acq(self) -> Relation:
        x = self.x
        return (
            x.tagged(RELEASE)
            .identity()
            .sequence(x.rfi)
            .sequence(x.tagged(ACQUIRE).identity())
        )

    # -- Figure 8 ----------------------------------------------------------

    @cached_property
    def dep(self) -> Relation:
        return self._shared("dep", lambda: self.x.addr | self.x.data)

    @cached_property
    def rwdep(self) -> Relation:
        x = self.x
        return self._shared(
            "rwdep", lambda: (self.dep | x.ctrl) & (x.reads * x.writes)
        )

    @cached_property
    def overwrite(self) -> Relation:
        return self.x.co | self.x.fr

    @cached_property
    def to_w(self) -> Relation:
        return self.rwdep | (self.overwrite & self.x.int_)

    @cached_property
    def rrdep(self) -> Relation:
        return self.x.addr | self.dep.sequence(self.x.rfi)

    @cached_property
    def strong_rrdep(self) -> Relation:
        return self.rrdep.transitive_closure() & self.rb_dep

    @cached_property
    def to_r(self) -> Relation:
        return self.strong_rrdep | self.rfi_rel_acq

    @cached_property
    def gp(self) -> Relation:
        """``(po & (_ x Sync)) ; po?`` — Figure 12."""

        def compute() -> Relation:
            x = self.x
            sync = x.tagged(SYNC_RCU)
            to_sync = x.po & (x.all_events * sync)
            return to_sync.sequence(x.po.optional())

        return self._shared("gp", compute)

    @cached_property
    def strong_fence(self) -> Relation:
        if self.with_rcu:
            return self._shared("strong_fence+rcu", lambda: self.mb | self.gp)
        return self.mb

    @cached_property
    def fence(self) -> Relation:
        return self._shared(
            ("fence", self.with_rcu),
            lambda: self.strong_fence
            | self.po_rel
            | self.wmb
            | self.rmb
            | self.acq_po,
        )

    @cached_property
    def ppo(self) -> Relation:
        return self.rrdep.reflexive_transitive_closure().sequence(
            self.to_r | self.to_w | self.fence
        )

    def a_cumul(self, r: Relation) -> Relation:
        """``A-cumul(r) := rfe? ; r``."""
        return self.x.rfe.optional().sequence(r)

    @cached_property
    def cumul_fence(self) -> Relation:
        return self.a_cumul(self.strong_fence | self.po_rel) | self.wmb

    @cached_property
    def prop(self) -> Relation:
        x = self.x
        return (
            (self.overwrite & x.ext)
            .optional()
            .sequence(self.cumul_fence.reflexive_transitive_closure())
            .sequence(x.rfe.optional())
        )

    @cached_property
    def hb(self) -> Relation:
        x = self.x
        return ((self.prop - x.identity) & x.int_) | self.ppo | x.rfe

    @cached_property
    def pb(self) -> Relation:
        return self.prop.sequence(self.strong_fence).sequence(
            self.hb.reflexive_transitive_closure()
        )

    # -- Figure 12 ---------------------------------------------------------

    @cached_property
    def crit(self) -> Relation:
        """Outermost ``rcu_read_lock`` to its matching ``rcu_read_unlock``.

        Computed by :func:`repro.executions.derived.crit_relation` (shared
        with the cat layer and memoised per trace combination).
        """
        from repro.executions.derived import crit_relation

        return crit_relation(self.x)

    @cached_property
    def rscs(self) -> Relation:
        """``po ; crit^-1 ; po?``."""
        return self._shared(
            "rscs",
            lambda: self.x.po.sequence(self.crit.inverse()).sequence(
                self.x.po.optional()
            ),
        )

    @cached_property
    def link(self) -> Relation:
        """``hb* ; pb* ; prop``."""
        return (
            self.hb.reflexive_transitive_closure()
            .sequence(self.pb.reflexive_transitive_closure())
            .sequence(self.prop)
        )

    @cached_property
    def gp_link(self) -> Relation:
        return self.gp.sequence(self.link)

    @cached_property
    def rscs_link(self) -> Relation:
        return self.rscs.sequence(self.link)

    @cached_property
    def rcu_path(self) -> Relation:
        """The recursive relation of Figure 12, as a least fixpoint."""
        gp_link = self.gp_link
        rscs_link = self.rscs_link

        def step(current: Relation) -> Relation:
            return (
                gp_link
                | current.sequence(current)
                | gp_link.sequence(rscs_link)
                | rscs_link.sequence(gp_link)
                | gp_link.sequence(current).sequence(rscs_link)
                | rscs_link.sequence(current).sequence(gp_link)
            )

        return least_fixpoint(step, self.x.universe)


class LinuxKernelModel(Model):
    """The LK model: core axioms (Figure 3) plus the RCU axiom (Figure 12)."""

    def __init__(self, with_rcu: bool = True):
        self.with_rcu = with_rcu
        self.name = "LKMM" if with_rcu else "LKMM-core"

    def relations(self, execution: CandidateExecution) -> LkmmRelations:
        return LkmmRelations(execution, with_rcu=self.with_rcu)

    def check(
        self,
        execution: CandidateExecution,
        relations: Optional[LkmmRelations] = None,
    ) -> ModelResult:
        """Judge one execution.

        ``relations`` may be a precomputed :class:`LkmmRelations` for this
        execution (the race detector passes the instance it inspects, so
        the cached derived relations are computed once).
        """
        rel = relations if relations is not None else self.relations(execution)
        x = execution
        violations: List[AxiomViolation] = []

        with _obs.span("lkmm.check.Scpv"):
            scpv = x.po_loc | x.com
            cycle = scpv.find_cycle()
        if cycle is not None:
            violations.append(AxiomViolation("Scpv", "acyclic", tuple(cycle)))

        with _obs.span("lkmm.check.At"):
            at = x.rmw & x.fre.sequence(x.coe)
        if not at.is_empty():
            violations.append(AxiomViolation("At", "empty", tuple(at.pairs)))

        with _obs.span("lkmm.check.Hb"):
            cycle = rel.hb.find_cycle()
        if cycle is not None:
            violations.append(AxiomViolation("Hb", "acyclic", tuple(cycle)))

        with _obs.span("lkmm.check.Pb"):
            cycle = rel.pb.find_cycle()
        if cycle is not None:
            violations.append(AxiomViolation("Pb", "acyclic", tuple(cycle)))

        if self.with_rcu:
            with _obs.span("lkmm.check.Rcu"):
                reflexive = rel.rcu_path.reflexive_pairs()
            if reflexive:
                witness = tuple(
                    event for pair in reflexive[:1] for event in pair
                )
                violations.append(
                    AxiomViolation("Rcu", "irreflexive", witness)
                )

        if _obs.ENABLED:
            _obs.count("lkmm.checks")
            for violation in violations:
                _obs.count(f"lkmm.violation.{violation.axiom}")
        return ModelResult(allowed=not violations, violations=violations)
