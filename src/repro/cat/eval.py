"""Evaluation of cat models over candidate executions.

Values in cat are event sets or binary relations; the evaluator is
dynamically typed and dispatches each operator on the operand kinds, as
herd does.  Recursive ``let rec`` groups are evaluated as simultaneous
least fixpoints starting from empty relations — the cat operators used in
recursive definitions are monotone, so iteration converges on finite
executions.

The builtin environment exposes:

* the base relations ``po``, ``rf``, ``co``, ``addr``, ``data``, ``ctrl``,
  ``rmw``, ``loc``, ``int``, ``ext``, ``id``;
* the event sets ``_``, ``R``, ``W``, ``F``, ``M``, ``IW``;
* one event set per annotation, capitalised (``Once``, ``Acquire``,
  ``Release``, ``Rmb``, ``Wmb``, ``Mb``, ``Rb-dep``, ``Rcu-lock``,
  ``Rcu-unlock``, ``Sync-rcu``, plus the architecture- and C11-level tags
  used by the comparison models);
* ``crit``, the outermost RCU lock/unlock matching (herd gets this from
  the bell layer; see :mod:`repro.executions.derived`);
* the builtin functions ``domain``, ``range``, and ``fencerel``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Union as TUnion

from repro.cat import ast as C
from repro.cat.parser import CatParseError, parse_cat
from repro.events import FENCE
from repro.executions.candidate import CandidateExecution
from repro.executions.derived import crit_relation
from repro.model import AxiomViolation, Model, ModelResult
from repro.relations import EventSet, Relation

#: Directory holding the shipped .cat model files.
MODELS_DIR = Path(__file__).parent / "models"


class CatError(Exception):
    """Raised for type or name errors during evaluation."""


Value = TUnion[Relation, EventSet, "CatFunction"]


class CatFunction:
    """A user-defined cat function (e.g. ``A-cumul``)."""

    def __init__(self, name, params, body, env):
        self.name = name
        self.params = params
        self.body = body
        self.env = env  # captured environment (lexical scoping)

    def __call__(self, evaluator: "_Evaluator", args: List[Value]) -> Value:
        if len(args) != len(self.params):
            raise CatError(
                f"{self.name} expects {len(self.params)} args, got {len(args)}"
            )
        inner = dict(self.env)
        inner.update(zip(self.params, args))
        return evaluator.eval(self.body, inner)


#: Annotation name (as it appears in cat files) -> event tag.
TAG_SETS: Dict[str, str] = {
    # Linux-kernel tags (Tables 3 and 4).
    "Once": "once",
    "Acquire": "acquire",
    "Release": "release",
    "Rmb": "rmb",
    "Wmb": "wmb",
    "Mb": "mb",
    "Rb-dep": "rb-dep",
    "Rcu-lock": "rcu-lock",
    "Rcu-unlock": "rcu-unlock",
    "Sync-rcu": "sync-rcu",
    "Plain": "plain",
    "Noop": "noop",
    # Architecture-level tags (repro.hardware.compile).
    "Sync": "sync",
    "Lwsync": "lwsync",
    "Isync": "isync",
    "Mfence": "mfence",
    "Dmb": "dmb",
    "Dmb-ld": "dmb-ld",
    "Dmb-st": "dmb-st",
    "Ldar": "ldar",
    "Stlr": "stlr",
    "Alpha-mb": "alpha-mb",
    "Alpha-wmb": "alpha-wmb",
    # C11 tags (the mapping of Section 5.2).
    "RLX": "rlx",
    "ACQ": "acq",
    "REL": "rel",
    "SC": "sc",
    "F-acq": "f-acq",
    "F-rel": "f-rel",
    "F-sc": "f-sc",
}


def builtin_environment(execution: CandidateExecution) -> Dict[str, Value]:
    """The initial cat environment for one execution."""
    env: Dict[str, Value] = {
        "po": execution.po,
        "rf": execution.rf,
        "co": execution.co,
        "addr": execution.addr,
        "data": execution.data,
        "ctrl": execution.ctrl,
        "rmw": execution.rmw,
        "loc": execution.loc,
        "int": execution.int_,
        "ext": execution.ext,
        "id": execution.identity,
        "_": execution.all_events,
        "R": execution.reads,
        "W": execution.writes,
        "F": execution.fences,
        "M": execution.accesses,
        "IW": execution.initial_writes,
        "crit": crit_relation(execution),
    }
    for name, tag in TAG_SETS.items():
        env[name] = execution.tagged(tag)
    return env


class _Evaluator:
    """Evaluates cat expressions in an environment."""

    def __init__(self, execution: CandidateExecution):
        self.x = execution
        self.universe = execution.universe

    # -- helpers ---------------------------------------------------------

    def _as_relation(self, value: Value, context: str) -> Relation:
        if isinstance(value, Relation):
            return value
        if isinstance(value, EventSet):
            # herd coerces sets to identity relations in relation position.
            return value.identity()
        raise CatError(f"{context}: expected a relation, got {type(value).__name__}")

    def _as_set(self, value: Value, context: str) -> EventSet:
        if isinstance(value, EventSet):
            return value
        raise CatError(f"{context}: expected an event set, got {type(value).__name__}")

    # -- evaluation --------------------------------------------------------

    def eval(self, expr: C.CatExpr, env: Dict[str, Value]) -> Value:
        if isinstance(expr, C.Id):
            try:
                return env[expr.name]
            except KeyError:
                raise CatError(f"unbound identifier {expr.name!r}") from None
        if isinstance(expr, C.EmptyRel):
            return Relation((), self.universe)
        if isinstance(expr, C.Union):
            lhs = self.eval(expr.lhs, env)
            rhs = self.eval(expr.rhs, env)
            if isinstance(lhs, EventSet) and isinstance(rhs, EventSet):
                return lhs | rhs
            return self._as_relation(lhs, "|") | self._as_relation(rhs, "|")
        if isinstance(expr, C.Inter):
            lhs = self.eval(expr.lhs, env)
            rhs = self.eval(expr.rhs, env)
            if isinstance(lhs, EventSet) and isinstance(rhs, EventSet):
                return lhs & rhs
            return self._as_relation(lhs, "&") & self._as_relation(rhs, "&")
        if isinstance(expr, C.Diff):
            lhs = self.eval(expr.lhs, env)
            rhs = self.eval(expr.rhs, env)
            if isinstance(lhs, EventSet) and isinstance(rhs, EventSet):
                return lhs - rhs
            return self._as_relation(lhs, "\\") - self._as_relation(rhs, "\\")
        if isinstance(expr, C.Seq):
            lhs = self._as_relation(self.eval(expr.lhs, env), ";")
            rhs = self._as_relation(self.eval(expr.rhs, env), ";")
            return lhs.sequence(rhs)
        if isinstance(expr, C.Cartesian):
            lhs = self._as_set(self.eval(expr.lhs, env), "*")
            rhs = self._as_set(self.eval(expr.rhs, env), "*")
            return lhs.product(rhs)
        if isinstance(expr, C.Compl):
            value = self.eval(expr.operand, env)
            if isinstance(value, EventSet):
                return value.complement()
            return self._as_relation(value, "~").complement()
        if isinstance(expr, C.Inverse):
            return self._as_relation(self.eval(expr.operand, env), "^-1").inverse()
        if isinstance(expr, C.Opt):
            return self._as_relation(self.eval(expr.operand, env), "?").optional()
        if isinstance(expr, C.Plus):
            return self._as_relation(
                self.eval(expr.operand, env), "+"
            ).transitive_closure()
        if isinstance(expr, C.Star):
            return self._as_relation(
                self.eval(expr.operand, env), "*"
            ).reflexive_transitive_closure()
        if isinstance(expr, C.SetId):
            return self._as_set(self.eval(expr.operand, env), "[]").identity()
        if isinstance(expr, C.App):
            return self._apply(expr, env)
        raise CatError(f"unknown cat expression {expr!r}")

    def _apply(self, expr: C.App, env: Dict[str, Value]) -> Value:
        args = [self.eval(arg, env) for arg in expr.args]
        if expr.func == "domain":
            return self._as_relation(args[0], "domain").domain()
        if expr.func == "range":
            return self._as_relation(args[0], "range").range()
        if expr.func == "fencerel":
            # fencerel(S) = (po & (_ x S)) ; po — events separated by a
            # fence in S.
            fence_set = self._as_set(args[0], "fencerel")
            x = self.x
            before = x.po.restrict(range_=fence_set)
            after = x.po.restrict(domain=fence_set)
            return before.sequence(after)
        func = env.get(expr.func)
        if isinstance(func, CatFunction):
            return func(self, args)
        raise CatError(f"unknown function {expr.func!r}")


class CatModel(Model):
    """A consistency model defined by a cat file."""

    def __init__(self, cat_file: C.CatFile, name: Optional[str] = None):
        self.cat_file = cat_file
        self.name = name or cat_file.name

    @classmethod
    def from_source(cls, source: str, name: Optional[str] = None) -> "CatModel":
        return cls(parse_cat(source), name=name)

    @classmethod
    def from_path(cls, path, name: Optional[str] = None) -> "CatModel":
        path = Path(path)
        cat_file = parse_cat(path.read_text(), default_name=path.stem)
        return cls(cat_file, name=name)

    def check(self, execution: CandidateExecution) -> ModelResult:
        evaluator = _Evaluator(execution)
        env = builtin_environment(execution)
        violations: List[AxiomViolation] = []
        flags: List[AxiomViolation] = []
        self._run(self.cat_file, evaluator, env, violations, flags)
        result = ModelResult(allowed=not violations, violations=violations)
        result.flags = flags  # informational, does not affect the verdict
        return result

    def _run(
        self,
        cat_file: C.CatFile,
        evaluator: _Evaluator,
        env: Dict[str, Value],
        violations: List[AxiomViolation],
        flags: List[AxiomViolation],
    ) -> None:
        for index, statement in enumerate(cat_file.statements):
            if isinstance(statement, C.Include):
                included = _load_cat_file(statement.path)
                self._run(included, evaluator, env, violations, flags)
            elif isinstance(statement, C.Let):
                self._bind(statement, evaluator, env)
            elif isinstance(statement, C.Check):
                violation = self._check(statement, evaluator, env, index)
                if violation is not None:
                    (flags if statement.flag else violations).append(violation)
            else:  # pragma: no cover - parser produces only the above
                raise CatError(f"unknown statement {statement!r}")

    def _bind(
        self, let: C.Let, evaluator: _Evaluator, env: Dict[str, Value]
    ) -> None:
        if not let.recursive:
            for binding in let.bindings:
                if binding.params:
                    env[binding.name] = CatFunction(
                        binding.name, binding.params, binding.expr, env.copy()
                    )
                else:
                    env[binding.name] = evaluator.eval(binding.expr, env)
            return
        # let rec: simultaneous least fixpoint from empty relations.
        for binding in let.bindings:
            if binding.params:
                raise CatError("recursive cat functions are not supported")
            env[binding.name] = Relation((), evaluator.universe)
        while True:
            changed = False
            for binding in let.bindings:
                new = evaluator._as_relation(
                    evaluator.eval(binding.expr, env), f"let rec {binding.name}"
                )
                if new.pairs != evaluator._as_relation(
                    env[binding.name], binding.name
                ).pairs:
                    env[binding.name] = new
                    changed = True
            if not changed:
                return

    def _check(
        self,
        check: C.Check,
        evaluator: _Evaluator,
        env: Dict[str, Value],
        index: int,
    ) -> Optional[AxiomViolation]:
        name = check.name or f"{check.kind}-{index}"
        value = evaluator.eval(check.expr, env)
        if check.kind == "empty":
            if isinstance(value, EventSet):
                holds = value.is_empty()
                witness = tuple((e, e) for e in value)
            else:
                relation = evaluator._as_relation(value, "empty")
                holds = relation.is_empty()
                witness = tuple(relation.pairs)
            if check.negated:
                holds = not holds
                witness = ()
            if holds:
                return None
            return AxiomViolation(name, "empty", witness)

        relation = evaluator._as_relation(value, check.kind)
        if check.kind == "acyclic":
            cycle = relation.find_cycle()
            holds = cycle is None
            witness = tuple(cycle or ())
        elif check.kind == "irreflexive":
            reflexive = [a for a, b in relation.pairs if a == b]
            holds = not reflexive
            witness = tuple(reflexive[:1] * 2)
        else:  # pragma: no cover
            raise CatError(f"unknown check kind {check.kind!r}")
        if check.negated:
            holds = not holds
            witness = ()
        if holds:
            return None
        return AxiomViolation(name, check.kind, witness)


def _load_cat_file(name: str) -> C.CatFile:
    path = MODELS_DIR / name
    if not path.exists():
        raise CatError(f"included cat file {name!r} not found in {MODELS_DIR}")
    return parse_cat(path.read_text(), default_name=path.stem)


def load_model(name: str) -> CatModel:
    """Load a shipped model by name (e.g. ``lkmm``, ``c11``, ``tso``)."""
    path = MODELS_DIR / f"{name}.cat"
    if not path.exists():
        available = sorted(p.stem for p in MODELS_DIR.glob("*.cat"))
        raise CatError(f"unknown model {name!r}; available: {available}")
    return CatModel.from_path(path)
