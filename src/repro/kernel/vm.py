"""The relational bytecode VM: batched cross-candidate check execution.

:mod:`repro.analysis.catir.plan` lowers each :class:`CheckPlan` once into
a :class:`VMProgram` — a flat array of instructions over numbered
registers — and this module executes it per candidate.  Registers hold
*raw* bitset values (a relation is a list of ``n`` Python ints, row ``i``
the successor bitmask of event ``i``; an event set is a single mask), so
the per-candidate hot loop runs word-parallel integer arithmetic with no
:class:`~repro.relations.Relation` wrappers, no per-node memo
dictionaries and no dynamic dispatch beyond one opcode test.

The program is split into two instruction streams:

* the **prelude** computes every trace-invariant node (rf/co-independent,
  per PR 2's varying-name analysis).  It runs once per
  :class:`~repro.kernel.skeleton.TraceSkeleton` and its register file is
  shared *by reference* across all rf×co sibling candidates — sound
  because no opcode ever mutates an operand row list, so sharing is
  indistinguishable from recomputation;
* the **main** stream loads ``rf``/``co`` (zero-copy from the enumerator's
  dense relations) and computes the witness-dependent nodes into a copy
  of the prelude register file.

``let rec`` groups become one :data:`FIXPOINT` meta-instruction whose
per-binding body segments re-run each Gauss–Seidel sweep, mirroring the
plan evaluator's iteration (bodies in group order, a shared node
recomputed once per sweep in the segment that first needs it) so the
fixpoints are value-identical.

Verdicts funnel through :func:`repro.cat.eval.check_axiom` exactly like
the interpreter and the plan evaluator: the final raw value is wrapped
back into a :class:`Relation`/:class:`EventSet` only when a check needs a
witness (the all-clear fast paths answer on the raw rows).

Per-opcode execution counts are published as ``vm.op.<NAME>`` counters
when an observability collector is installed (``repro-herd --bench``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.events import FENCE, READ, WRITE
from repro.guard import core as _guard
from repro.kernel.bitrel import DenseRelation, _bits, index_for
from repro.model import AxiomViolation
from repro.obs import core as _obs
from repro.relations import EventSet, Relation

# -- opcodes --------------------------------------------------------------

LOAD_BASE = 0  # dest <- base value named names[a] (env, or rf/co)
EMPTY_REL = 1  # dest <- all-zero rows
EMPTY_SET = 2  # dest <- 0
UNION_REL = 3  # dest <- a | b, row-wise
UNION_SET = 4  # dest <- a | b
INTER_REL = 5  # dest <- a & b, row-wise
INTER_SET = 6  # dest <- a & b
DIFF_REL = 7  # dest <- a & ~b, row-wise
DIFF_SET = 8  # dest <- a & ~b
COMPL_REL = 9  # dest <- full & ~a, row-wise
COMPL_SET = 10  # dest <- full & ~a
SEQ = 11  # dest <- a ; b (composition)
CARTESIAN = 12  # dest <- a * b (set masks -> rows)
INVERSE = 13  # dest <- a^-1 (transpose)
OPT = 14  # dest <- a? (a | id)
PLUS = 15  # dest <- a+ (bitset Floyd-Warshall)
STAR = 16  # dest <- a* (a+ | id)
SETID = 17  # dest <- [a] (set mask -> diagonal rows)
DOMAIN = 18  # dest <- domain(a) (rows -> mask)
RANGE = 19  # dest <- range(a) (rows -> mask)
FENCEREL = 20  # dest <- (a restricted-range b) ; (a restricted-domain b)
FIXPOINT = 21  # a = ((segment instrs, body reg, rec reg), ...)

OPNAMES = {
    LOAD_BASE: "LOAD_BASE",
    EMPTY_REL: "EMPTY_REL",
    EMPTY_SET: "EMPTY_SET",
    UNION_REL: "UNION_REL",
    UNION_SET: "UNION_SET",
    INTER_REL: "INTER_REL",
    INTER_SET: "INTER_SET",
    DIFF_REL: "DIFF_REL",
    DIFF_SET: "DIFF_SET",
    COMPL_REL: "COMPL_REL",
    COMPL_SET: "COMPL_SET",
    SEQ: "SEQ",
    CARTESIAN: "CARTESIAN",
    INVERSE: "INVERSE",
    OPT: "OPT",
    PLUS: "PLUS",
    STAR: "STAR",
    SETID: "SETID",
    DOMAIN: "DOMAIN",
    RANGE: "RANGE",
    FENCEREL: "FENCEREL",
    FIXPOINT: "FIXPOINT",
}


class Unavailable(Exception):
    """Raised when a base relation has no dense form over the candidate's
    canonical event index (frozenset backend, or stranger events); the
    caller falls back to the plan evaluator for this execution."""


#: Cached prelude slot marking "this skeleton cannot run the VM".
_UNAVAILABLE = object()


class VMCheck:
    """One lowered check: where its value lives and how to judge it."""

    __slots__ = ("kind", "label", "negated", "flag", "reg", "is_set",
                 "invariant")

    def __init__(self, kind, label, negated, flag, reg, is_set, invariant):
        self.kind = kind
        self.label = label
        self.negated = negated
        self.flag = flag
        self.reg = reg
        self.is_set = is_set
        #: rf/co-independent: judged once per skeleton, in the prelude.
        self.invariant = invariant


class VMProgram:
    """One lowered check plan: two instruction streams plus the checks."""

    __slots__ = ("token", "name", "names", "prelude", "main", "checks",
                 "n_regs")

    def __init__(self, token, name, names, prelude, main, checks, n_regs):
        #: The owning plan's token (shared-memo / prelude-cache key).
        self.token = token
        self.name = name
        #: Base identifiers referenced by LOAD_BASE, by operand index.
        self.names: Tuple[str, ...] = names
        self.prelude: Tuple[tuple, ...] = prelude
        self.main: Tuple[tuple, ...] = main
        self.checks: Tuple[VMCheck, ...] = checks
        self.n_regs = n_regs

    def describe(self) -> str:  # pragma: no cover - debugging aid
        lines = [f"vm program {self.name}: {self.n_regs} registers"]
        for title, stream in (("prelude", self.prelude), ("main", self.main)):
            lines.append(f"{title}:")
            for instr in stream:
                lines.append(f"  {OPNAMES[instr[0]]} {instr[1:]}")
        return "\n".join(lines)


# -- base values ----------------------------------------------------------

_REL_ATTRS = {"po": "po", "addr": "addr", "data": "data", "ctrl": "ctrl",
              "rmw": "rmw", "rf": "rf", "co": "co"}


def _dense_rows(relation, index) -> List[int]:
    """Zero-copy rows of an already-dense relation, validated against the
    candidate's canonical index."""
    dense = relation._densify()
    if dense is None:
        raise Unavailable
    if dense.index is not index and dense.index.universe != index.universe:
        raise Unavailable
    return dense.rows


def base_value(name: str, execution, index):
    """The raw value (rows or mask) of one builtin base identifier.

    Only the bases a model actually references are computed — unlike the
    interpreter's eager environment, which builds every tag set per
    skeleton whether or not the model mentions it.
    """
    attr = _REL_ATTRS.get(name)
    if attr is not None:
        return _dense_rows(getattr(execution, attr), index)
    events = index.events
    n = index.n
    if name == "_":
        return index.full_row
    if name in ("R", "W", "F"):
        kind = {"R": READ, "W": WRITE, "F": FENCE}[name]
        mask = 0
        for i, event in enumerate(events):
            if event.kind == kind:
                mask |= 1 << i
        return mask
    if name == "M":
        mask = 0
        for i, event in enumerate(events):
            if event.kind == READ or event.kind == WRITE:
                mask |= 1 << i
        return mask
    if name == "IW":
        mask = 0
        for i, event in enumerate(events):
            if event.is_init:
                mask |= 1 << i
        return mask
    if name == "id":
        return [1 << i for i in range(n)]
    if name == "loc":
        groups: Dict[str, int] = {}
        for i, event in enumerate(events):
            if event.loc is not None:
                groups[event.loc] = groups.get(event.loc, 0) | (1 << i)
        return [
            groups[event.loc] if event.loc is not None else 0
            for event in events
        ]
    if name in ("int", "ext"):
        by_tid: Dict[int, int] = {}
        for i, event in enumerate(events):
            by_tid[event.tid] = by_tid.get(event.tid, 0) | (1 << i)
        if name == "int":
            return [by_tid[event.tid] for event in events]
        full = index.full_row
        return [full & ~by_tid[event.tid] for event in events]
    if name == "crit":
        from repro.executions.derived import crit_relation

        return _dense_rows(crit_relation(execution), index)
    from repro.cat.eval import TAG_SETS

    tag = TAG_SETS.get(name)
    if tag is not None:
        mask = 0
        for i, event in enumerate(events):
            if event.has_tag(tag):
                mask |= 1 << i
        return mask
    raise Unavailable


# -- the executor ----------------------------------------------------------


def _execute(instrs, regs, execution, names, index, env) -> None:
    n = index.n
    full = index.full_row
    counts = {} if _obs.ENABLED else None
    for instr in instrs:
        op = instr[0]
        if counts is not None:
            counts[op] = counts.get(op, 0) + 1
        if op == SEQ:
            a = regs[instr[2]]
            b = regs[instr[3]]
            out = []
            append = out.append
            for row in a:
                acc = 0
                while row:
                    low = row & -row
                    acc |= b[low.bit_length() - 1]
                    row ^= low
                append(acc)
            regs[instr[1]] = out
        elif op == UNION_REL:
            regs[instr[1]] = [
                x | y for x, y in zip(regs[instr[2]], regs[instr[3]])
            ]
        elif op == INTER_REL:
            regs[instr[1]] = [
                x & y for x, y in zip(regs[instr[2]], regs[instr[3]])
            ]
        elif op == DIFF_REL:
            regs[instr[1]] = [
                x & ~y for x, y in zip(regs[instr[2]], regs[instr[3]])
            ]
        elif op == SETID:
            mask = regs[instr[2]]
            out = [0] * n
            while mask:
                low = mask & -mask
                out[low.bit_length() - 1] = low
                mask ^= low
            regs[instr[1]] = out
        elif op == UNION_SET:
            regs[instr[1]] = regs[instr[2]] | regs[instr[3]]
        elif op == INTER_SET:
            regs[instr[1]] = regs[instr[2]] & regs[instr[3]]
        elif op == DIFF_SET:
            regs[instr[1]] = regs[instr[2]] & ~regs[instr[3]]
        elif op == LOAD_BASE:
            name = names[instr[2]]
            if env is not None and name in env:
                regs[instr[1]] = env[name]
            else:
                relation = execution.rf if name == "rf" else execution.co
                regs[instr[1]] = _dense_rows(relation, index)
        elif op == CARTESIAN:
            a = regs[instr[2]]
            b = regs[instr[3]]
            regs[instr[1]] = [b if a >> i & 1 else 0 for i in range(n)]
        elif op == INVERSE:
            out = [0] * n
            bit = 1
            for row in regs[instr[2]]:
                while row:
                    low = row & -row
                    out[low.bit_length() - 1] |= bit
                    row ^= low
                bit <<= 1
            regs[instr[1]] = out
        elif op == OPT:
            regs[instr[1]] = [
                row | (1 << i) for i, row in enumerate(regs[instr[2]])
            ]
        elif op == PLUS or op == STAR:
            # Bitset Floyd-Warshall, same sweep order as DenseRelation.
            rows = list(regs[instr[2]])
            for k in range(n):
                if not rows[k]:
                    continue
                bit = 1 << k
                row_k = rows[k]
                for i in range(n):
                    if rows[i] & bit:
                        rows[i] |= row_k
                        if i == k:
                            row_k = rows[k]
            if op == STAR:
                rows = [row | (1 << i) for i, row in enumerate(rows)]
            regs[instr[1]] = rows
        elif op == DOMAIN:
            mask = 0
            for i, row in enumerate(regs[instr[2]]):
                if row:
                    mask |= 1 << i
            regs[instr[1]] = mask
        elif op == RANGE:
            mask = 0
            for row in regs[instr[2]]:
                mask |= row
            regs[instr[1]] = mask
        elif op == FENCEREL:
            po = regs[instr[2]]
            fences = regs[instr[3]]
            out = []
            append = out.append
            for row in po:
                mid = row & fences
                acc = 0
                while mid:
                    low = mid & -mid
                    acc |= po[low.bit_length() - 1]
                    mid ^= low
                append(acc)
            regs[instr[1]] = out
        elif op == COMPL_REL:
            regs[instr[1]] = [full & ~row for row in regs[instr[2]]]
        elif op == COMPL_SET:
            regs[instr[1]] = full & ~regs[instr[2]]
        elif op == EMPTY_REL:
            regs[instr[1]] = [0] * n
        elif op == EMPTY_SET:
            regs[instr[1]] = 0
        elif op == FIXPOINT:
            segments = instr[2]
            zero = [0] * n
            for _seg, _body, rec_reg in segments:
                regs[rec_reg] = zero
            changed = True
            while changed:
                changed = False
                for seg, body_reg, rec_reg in segments:
                    if seg:
                        _execute(seg, regs, execution, names, index, env)
                    new = regs[body_reg]
                    if new != regs[rec_reg]:
                        regs[rec_reg] = new
                        changed = True
        else:  # pragma: no cover - lowering only emits known opcodes
            raise Unavailable
    if counts:
        for op, hits in counts.items():
            _obs.count(f"vm.op.{OPNAMES[op]}", hits)


# -- judging checks --------------------------------------------------------


def _judge(check: VMCheck, raw, index, universe):
    """Verdict for one check over a raw register value.

    The common all-clear cases are answered on the raw rows, and a failed
    ``acyclic`` check turns its DFS cycle into the violation witness
    directly (position-for-position what :func:`check_axiom` would
    extract from the same rows).  Everything else — negated checks,
    ``empty``/``irreflexive`` violations — is wrapped back into the
    relation layer and funnelled through :func:`check_axiom`, so those
    witnesses are constructed by exactly the same code as the
    interpreter and the plan evaluator.
    """
    kind = check.kind
    if not check.negated:
        if kind == "empty":
            if (raw == 0) if check.is_set else not any(raw):
                return None
        elif kind == "acyclic":
            if not check.is_set:
                positions = DenseRelation(index, raw).find_cycle_positions()
                if positions is None:
                    return None
                # The cycle DFS already ran; building the witness directly
                # avoids a second DFS through check_axiom.  Same rows, same
                # deterministic DFS, so the cycle is the one check_axiom
                # would extract.
                events = index.events
                return AxiomViolation(
                    check.label,
                    "acyclic",
                    tuple(events[i] for i in positions),
                )
        elif kind == "irreflexive":
            if not check.is_set:
                for i, row in enumerate(raw):
                    if row >> i & 1:
                        break
                else:
                    return None
    from repro.cat.eval import check_axiom

    if check.is_set:
        events = index.events
        value = EventSet((events[i] for i in _bits(raw)), universe)
    else:
        value = Relation._from_dense(DenseRelation(index, raw), universe)
    return check_axiom(kind, check.label, check.negated, value)


# -- driving one candidate ---------------------------------------------------


def _build_prelude(program: VMProgram, execution, index, model_name):
    """Run the invariant stream once; judge the invariant checks."""
    if _obs.ENABLED:
        _obs.count("vm.prelude_builds")
    env = {}
    for name in program.names:
        if name not in ("rf", "co"):
            env[name] = base_value(name, execution, index)
    regs: List = [None] * program.n_regs
    _execute(program.prelude, regs, execution, program.names, index, env)
    invariant_violations = {}
    for position, check in enumerate(program.checks):
        if not check.invariant:
            continue
        if _obs.ENABLED:
            with _obs.span(f"cat.check.{model_name}.{check.label}"):
                invariant_violations[position] = _judge(
                    check, regs[check.reg], index, execution.universe
                )
        else:
            invariant_violations[position] = _judge(
                check, regs[check.reg], index, execution.universe
            )
    return regs, invariant_violations


def run_checks(
    program: VMProgram, execution, model_name: str
) -> Optional[Tuple[List, List]]:
    """Execute the program for one candidate.

    Returns ``(violations, flags)`` exactly as ``CheckPlan.run`` would,
    or ``None`` when this execution has no dense relations (the caller
    falls back to the plan evaluator).
    """
    if _guard.ACTIVE:
        _guard._current.tick()  # budget safepoint: one per-candidate VM run
    index = index_for(execution.universe)
    skeleton = execution._shared
    if skeleton is None:
        try:
            state = _build_prelude(program, execution, index, model_name)
        except Unavailable:
            return None
    else:
        cache = skeleton.vm_state
        state = cache.get(program.token)
        if state is None:
            try:
                state = _build_prelude(program, execution, index, model_name)
            except Unavailable:
                state = _UNAVAILABLE
            cache[program.token] = state
        elif _obs.ENABLED:
            _obs.count("vm.prelude_hits")
        if state is _UNAVAILABLE:
            return None
    base_regs, invariant_violations = state
    regs = base_regs.copy()
    try:
        _execute(program.main, regs, execution, program.names, index, None)
    except Unavailable:
        return None
    violations: List = []
    flags: List = []
    observing = _obs.ENABLED
    universe = execution.universe
    for position, check in enumerate(program.checks):
        if check.invariant:
            violation = invariant_violations[position]
        elif observing:
            with _obs.span(f"cat.check.{model_name}.{check.label}"):
                violation = _judge(check, regs[check.reg], index, universe)
        else:
            violation = _judge(check, regs[check.reg], index, universe)
        if violation is not None:
            (flags if check.flag else violations).append(violation)
    if _obs.ENABLED:
        _obs.count("vm.runs")
    return violations, flags
