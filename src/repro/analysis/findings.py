"""The common finding type shared by the static-analysis passes.

Every pass (:mod:`repro.analysis.catlint`, :mod:`repro.analysis.litmuslint`,
:mod:`repro.analysis.races`) reports its results as a list of
:class:`Finding` so the ``repro-lint`` driver can print and count them
uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One static-analysis finding.

    Attributes:
        source: What was analysed — a cat model name, a litmus test name,
            or a file path.
        category: A stable machine-readable category such as
            ``undefined-identifier`` or ``uninitialized-read``.
        message: The human-readable description.
    """

    source: str
    category: str
    message: str

    def describe(self) -> str:
        return f"{self.source}: {self.category}: {self.message}"

    def __str__(self) -> str:  # pragma: no cover - convenience alias
        return self.describe()
