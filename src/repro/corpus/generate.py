"""Deterministic, seeded corpus generation over the diy edge vocabulary.

The corpus space is structured as *skeletons* × *decorations*:

* a **skeleton** is a cyclic communication pattern — ``t`` external edges
  (``Rfe``/``Fre``/``Coe``, one per thread, ``t`` ∈ 2–5) plus a *gap
  pattern* saying how many program-order edges (0, 1 or 2) sit between
  consecutive communication edges;
* a **decoration** picks the concrete program-order edges for each gap
  from the signature-compatible vocabulary (plain po, fences,
  dependencies, acquire/release);
* tests whose cycle contains a grace period additionally get an **RCU
  variant** with every non-grace-period thread wrapped in an
  ``rcu_read_lock()`` critical section.

Determinism is load-bearing: the stream for a given ``(seed, threads)``
is identical across processes and interpreter hash seeds (skeleton RNGs
are seeded from SHA-256, never from :func:`hash`), and a shorter run is
a strict prefix of a longer one — which is what makes sharded sweeps,
journal resume, and the frozen golden corpus possible.  Small decoration
spaces are enumerated exhaustively in seeded-shuffled order; large ones
are sampled without global materialisation.  Duplicates are rejected
both by canonical cycle (rotations describe the same test) and by
canonical AST digest (different cycles can realise the same program).

Every emitted test parses back from its own litmus text, round-trips
through the writer, and is lint-clean (no error-severity findings) —
properties locked by ``tests/test_diy_properties.py``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.findings import count_errors
from repro.analysis.litmuslint import lint_program
from repro.diy.edges import ANY, EDGES, Edge
from repro.diy.generator import CycleError, canonical_cycle, generate
from repro.events import RCU_LOCK, RCU_UNLOCK, SYNC_RCU
from repro.litmus.ast import Fence, Program, Thread
from repro.litmus.parser import parse_litmus
from repro.litmus.writer import write_litmus
from repro.obs import core as _obs

#: Communication (external) edges, in canonical order.
COMM_EDGES: Tuple[str, ...] = ("Coe", "Fre", "Rfe")

#: Internal (program-order) edges, sorted for deterministic iteration.
INTERNAL_EDGES: Tuple[str, ...] = tuple(
    sorted(name for name, e in EDGES.items() if not e.external)
)

#: Decoration spaces at or below this size are enumerated exhaustively
#: (in a seeded shuffle); larger spaces are sampled index-by-index.
EXHAUSTIVE_LIMIT = 2048

#: A sampled (non-exhaustive) skeleton retires after this many draws, so
#: generation terminates even when the requested target is unreachable.
SAMPLE_CAP = 4096

#: Failed draws (CycleError, duplicate, lint reject) tolerated per
#: skeleton visit before moving on to the next skeleton in the wave.
ATTEMPTS_PER_VISIT = 8

#: Classic family names for well-known communication skeletons (keyed by
#: the canonical rotation); everything else is named by its skeleton.
NAMED_FAMILIES: Dict[Tuple[str, ...], str] = {
    ("Fre", "Rfe"): "MP",
    ("Fre", "Fre"): "SB",
    ("Rfe", "Rfe"): "LB",
    ("Coe", "Fre"): "R",
    ("Coe", "Rfe"): "S",
    ("Coe", "Coe"): "2+2W",
    ("Fre", "Rfe", "Rfe"): "WRC",
    ("Fre", "Fre", "Rfe"): "RWC",
    ("Coe", "Rfe", "Rfe"): "WWC",
    ("Fre", "Rfe", "Fre", "Rfe"): "IRIW",
}


def family_of(comm: Sequence[str]) -> str:
    """The family label for a communication skeleton."""
    key = canonical_cycle(comm)
    return NAMED_FAMILIES.get(key, "+".join(key))


def program_digest(program: Program) -> str:
    """The canonical AST hash of a litmus program.

    Computed over the serialised litmus text with the name struck out, so
    two tests are corpus-identical iff their code, initial state and
    condition coincide — regardless of what cycle (or hand edit) produced
    them.  Stable across processes; used for deduplication and as the
    journal/golden integrity digest.
    """
    canonical = dataclasses.replace(program, name="@")
    return hashlib.sha256(write_litmus(canonical).encode()).hexdigest()[:16]


@dataclass(frozen=True)
class CorpusTest:
    """One generated corpus member plus its provenance."""

    name: str
    family: str
    threads: int
    #: The realised cycle, in canonical rotation.
    edges: Tuple[str, ...]
    #: Threads wrapped in an RCU read-side critical section ('' base).
    rcu_wrapped: Tuple[int, ...]
    digest: str
    program: Program = field(compare=False, repr=False)

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "family": self.family,
            "threads": self.threads,
            "edges": list(self.edges),
            "rcu_wrapped": list(self.rcu_wrapped),
            "digest": self.digest,
            "litmus": write_litmus(self.program),
        }

    @staticmethod
    def from_json(row: dict) -> "CorpusTest":
        program = parse_litmus(row["litmus"])
        return CorpusTest(
            name=row["name"],
            family=row["family"],
            threads=int(row["threads"]),
            edges=tuple(row["edges"]),
            rcu_wrapped=tuple(row.get("rcu_wrapped", ())),
            digest=row["digest"],
            program=program,
        )


# -- decoration vocabulary ---------------------------------------------------


def _edge(name: str) -> Edge:
    return EDGES[name]


def _mid_kind(e1: Edge, e2: Edge) -> Optional[str]:
    """The (determined, consistent) kind of the node between two internal
    edges, or ``None`` when the pair cannot stand together."""
    kinds = {e1.tgt, e2.src} - {ANY}
    if len(kinds) != 1:
        return None  # undetermined (ANY/ANY) or contradictory (R vs W)
    kind = min(kinds)
    if not (e1.matches_tgt(kind) and e2.matches_src(kind)):
        return None
    annots = {e1.tgt_annot, e2.src_annot} - {None}
    if len(annots) > 1:
        return None
    return kind


#: choices for a gap of the given size between kinds (src, tgt).  A
#: choice is a tuple of edge names (length == gap size).
_SLOT_CACHE: Dict[Tuple[str, str, int], Tuple[Tuple[str, ...], ...]] = {}


def slot_choices(
    src_kind: str, tgt_kind: str, size: int
) -> Tuple[Tuple[str, ...], ...]:
    """Every decoration of a size-``size`` gap from a ``src_kind`` node
    to a ``tgt_kind`` node, in deterministic order."""
    key = (src_kind, tgt_kind, size)
    cached = _SLOT_CACHE.get(key)
    if cached is not None:
        return cached
    if size == 0:
        # A 0-gap means the comm edges share the node: kinds must agree.
        choices: Tuple[Tuple[str, ...], ...] = (
            ((),) if src_kind == tgt_kind else ()
        )
    elif size == 1:
        choices = tuple(
            (name,)
            for name in INTERNAL_EDGES
            if _edge(name).matches_src(src_kind)
            and _edge(name).matches_tgt(tgt_kind)
        )
    elif size == 2:
        pairs = []
        for first in INTERNAL_EDGES:
            e1 = _edge(first)
            if not e1.matches_src(src_kind):
                continue
            for second in INTERNAL_EDGES:
                e2 = _edge(second)
                if not e2.matches_tgt(tgt_kind):
                    continue
                if _mid_kind(e1, e2) is None:
                    continue
                pairs.append((first, second))
        choices = tuple(pairs)
    else:  # pragma: no cover - corpus uses gaps of 0..2
        raise ValueError(f"unsupported gap size {size}")
    _SLOT_CACHE[key] = choices
    return choices


# -- skeletons ---------------------------------------------------------------


@dataclass
class _Skeleton:
    comm: Tuple[str, ...]
    gaps: Tuple[int, ...]
    family: str
    #: per-gap choice lists (only gaps with at least one choice survive
    #: construction).
    choices: Tuple[Tuple[Tuple[str, ...], ...], ...]
    total: int
    rng: random.Random
    #: exhaustive mode: a seeded shuffle of every decoration index.
    order: Optional[List[int]] = None
    cursor: int = 0
    draws: int = 0

    def exhausted(self) -> bool:
        if self.order is not None:
            return self.cursor >= len(self.order)
        return self.draws >= SAMPLE_CAP

    def next_indices(self) -> Optional[Tuple[int, ...]]:
        """The next decoration (one choice index per gap), or ``None``."""
        if self.exhausted():
            return None
        if self.order is not None:
            flat = self.order[self.cursor]
            self.cursor += 1
            indices = []
            for options in self.choices:
                flat, pick = divmod(flat, len(options))
                indices.append(pick)
            return tuple(indices)
        self.draws += 1
        return tuple(
            self.rng.randrange(len(options)) for options in self.choices
        )

    def edges_for(self, indices: Tuple[int, ...]) -> List[str]:
        edges: List[str] = []
        for comm_edge, options, pick in zip(self.comm, self.choices, indices):
            edges.append(comm_edge)
            edges.extend(options[pick])
        return edges


def _skeleton_seed(seed: int, comm: Sequence[str], gaps: Sequence[int]) -> int:
    """A process-stable RNG seed for one skeleton (SHA-256, not hash())."""
    text = f"{seed}|{','.join(comm)}|{','.join(map(str, gaps))}"
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


def _canonical_comm_tuples(t: int) -> List[Tuple[str, ...]]:
    seen: Set[Tuple[str, ...]] = set()
    out: List[Tuple[str, ...]] = []
    for combo in itertools.product(COMM_EDGES, repeat=t):
        key = canonical_cycle(combo)
        if key not in seen:
            seen.add(key)
            out.append(key)
    return out


def _build_skeleton(
    seed: int, comm: Tuple[str, ...], gaps: Tuple[int, ...]
) -> Optional[_Skeleton]:
    choice_lists: List[Tuple[Tuple[str, ...], ...]] = []
    t = len(comm)
    for i in range(t):
        src_kind = _edge(comm[i]).tgt
        tgt_kind = _edge(comm[(i + 1) % t]).src
        options = slot_choices(src_kind, tgt_kind, gaps[i])
        if not options:
            return None
        choice_lists.append(options)
    total = 1
    for options in choice_lists:
        total *= len(options)
    rng = random.Random(_skeleton_seed(seed, comm, gaps))
    order: Optional[List[int]] = None
    if total <= EXHAUSTIVE_LIMIT:
        order = list(range(total))
        rng.shuffle(order)
    return _Skeleton(
        comm=comm,
        gaps=gaps,
        family=family_of(comm),
        choices=tuple(choice_lists),
        total=total,
        rng=rng,
        order=order,
    )


def _skeletons(seed: int, threads: Sequence[int]) -> List[_Skeleton]:
    """Every skeleton, interleaved round-robin across thread counts so a
    corpus prefix is diverse rather than all-2-thread."""
    per_thread: List[List[_Skeleton]] = []
    for t in sorted(set(threads)):
        group: List[_Skeleton] = []
        for comm in _canonical_comm_tuples(t):
            for gaps in itertools.product((0, 1, 2), repeat=t):
                skeleton = _build_skeleton(seed, comm, gaps)
                if skeleton is not None:
                    group.append(skeleton)
        # Seeded shuffle within the thread count: which decorations lead
        # the stream varies with the seed, the *set* never does.
        random.Random(_skeleton_seed(seed, ("order",), (t,))).shuffle(group)
        per_thread.append(group)
    interleaved: List[_Skeleton] = []
    for batch in itertools.zip_longest(*per_thread):
        interleaved.extend(s for s in batch if s is not None)
    return interleaved


# -- RCU critical-section variants -------------------------------------------


def _has_sync(thread: Thread) -> bool:
    return any(
        isinstance(ins, Fence) and ins.tag == SYNC_RCU for ins in thread.body
    )


def rcu_wrap(program: Program) -> Tuple[Optional[Program], Tuple[int, ...]]:
    """Wrap every non-grace-period thread in an RCU read-side critical
    section.  Returns ``(None, ())`` when the program has no grace period
    (wrapping would be decoration without a counterpart) or no thread to
    wrap."""
    sync_threads = {
        tid for tid, th in enumerate(program.threads) if _has_sync(th)
    }
    if not sync_threads or len(sync_threads) == len(program.threads):
        return None, ()
    wrapped_tids = tuple(
        tid for tid in range(program.num_threads) if tid not in sync_threads
    )
    threads = tuple(
        Thread((Fence(RCU_LOCK),) + th.body + (Fence(RCU_UNLOCK),))
        if tid in wrapped_tids
        else th
        for tid, th in enumerate(program.threads)
    )
    wrapped = dataclasses.replace(
        program, threads=threads, name=program.name + "+rcu-lock"
    )
    return wrapped, wrapped_tids


# -- the generator -----------------------------------------------------------


def _lint_clean(program: Program) -> bool:
    return count_errors(lint_program(program)) == 0


def generate_corpus(
    seed: int = 0,
    target: Optional[int] = 10000,
    threads: Sequence[int] = (2, 3, 4, 5),
    lint: bool = True,
    rcu_variants: bool = True,
) -> Iterator[CorpusTest]:
    """Yield unique, lint-clean corpus tests deterministically.

    The stream for a given ``(seed, threads, lint, rcu_variants)`` is
    fixed: ``target`` only truncates it, so any shorter run is a prefix
    of a longer one (``tests/test_corpus_generate.py`` locks this,
    including across worker processes).
    """
    skeletons = _skeletons(seed, threads)
    seen_cycles: Set[Tuple[str, ...]] = set()
    seen_digests: Set[str] = set()
    emitted = 0

    def done() -> bool:
        return target is not None and emitted >= target

    active = skeletons
    while active and not done():
        survivors: List[_Skeleton] = []
        for skeleton in active:
            if done():
                break
            produced = False
            for _ in range(ATTEMPTS_PER_VISIT):
                indices = skeleton.next_indices()
                if indices is None:
                    break
                edges = skeleton.edges_for(indices)
                cycle = canonical_cycle(edges)
                if cycle in seen_cycles:
                    if _obs.ENABLED:
                        _obs.count("corpus.duplicate_cycles")
                    continue
                seen_cycles.add(cycle)
                try:
                    program = generate(list(cycle), name="+".join(cycle))
                except CycleError:
                    if _obs.ENABLED:
                        _obs.count("corpus.cycle_errors")
                    continue
                digest = program_digest(program)
                if digest in seen_digests:
                    if _obs.ENABLED:
                        _obs.count("corpus.alias_skips")
                    continue
                if lint and not _lint_clean(program):
                    if _obs.ENABLED:
                        _obs.count("corpus.lint_rejects")
                    continue
                seen_digests.add(digest)
                if _obs.ENABLED:
                    _obs.count("corpus.generated")
                yield CorpusTest(
                    name=program.name,
                    family=skeleton.family,
                    threads=program.num_threads,
                    edges=cycle,
                    rcu_wrapped=(),
                    digest=digest,
                    program=program,
                )
                emitted += 1
                produced = True
                if rcu_variants and not done():
                    variant, tids = rcu_wrap(program)
                    if variant is not None:
                        vdigest = program_digest(variant)
                        if vdigest not in seen_digests and (
                            not lint or _lint_clean(variant)
                        ):
                            seen_digests.add(vdigest)
                            if _obs.ENABLED:
                                _obs.count("corpus.rcu_variants")
                            yield CorpusTest(
                                name=variant.name,
                                family=skeleton.family,
                                threads=variant.num_threads,
                                edges=cycle,
                                rcu_wrapped=tids,
                                digest=vdigest,
                                program=variant,
                            )
                            emitted += 1
                break
            if not skeleton.exhausted():
                survivors.append(skeleton)
            elif not produced:
                if _obs.ENABLED:
                    _obs.count("corpus.skeletons_exhausted")
        active = survivors


def corpus_slice(
    seed: int,
    start: int,
    stop: int,
    threads: Sequence[int] = (2, 3, 4, 5),
    lint: bool = True,
    rcu_variants: bool = True,
) -> List[CorpusTest]:
    """Tests ``start..stop`` of the deterministic stream — the unit of
    cross-process generation (and of the determinism test: any process
    computing the same slice must produce identical bytes)."""
    return list(
        itertools.islice(
            generate_corpus(
                seed=seed,
                target=stop,
                threads=threads,
                lint=lint,
                rcu_variants=rcu_variants,
            ),
            start,
            stop,
        )
    )


def slice_digests(payload: Tuple[int, int, int]) -> List[str]:
    """Worker-pool form of :func:`corpus_slice`: ``(seed, start, stop)``
    in, the slice's digest list out.  Exists so the cross-process
    determinism test can ship the computation to
    :func:`repro.kernel.parallel.fault_tolerant_map` workers by name."""
    seed, start, stop = payload
    return [test.digest for test in corpus_slice(seed, start, stop)]
