"""Differential data-mining over a sweep's verdict matrix.

The paper's methodology is to *mine* the model disagreements, not just
tabulate verdicts: a litmus test is scientifically interesting exactly
when two models that ought to agree don't.  The unit of classification
is the **disagreement signature** — the row's verdict vector collapsed
to which models allow, which forbid, and which cannot express the test —
so "LKMM forbids what C11 allows" is one bucket regardless of which of
the 10,000 tests exhibits it.

Three classes of signal are extracted:

* **signatures** ranked by population, each with exemplar tests — the
  map of where the models part ways;
* **family density** — which cycle families provoke the most
  disagreement per test, i.e. where to aim the next generation wave;
* **soundness alerts** — rows where a hardware model *allows* what LKMM
  *forbids*.  Under the paper's Section 5.1 claim (the LK model is weaker
  than the mapped hardware models) this must never happen; any hit is
  either a mapping bug or a model bug, and is surfaced loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.corpus.generate import CorpusTest
from repro.corpus.sweep import (
    CORPUS_MODELS,
    NOT_APPLICABLE,
    ModelSpec,
    SweepResult,
)
from repro.herd import ALLOW, FORBID, INCONCLUSIVE

#: The reference column for soundness alerts.
REFERENCE_MODEL = "LKMM"


def row_signature(
    row: Dict[str, str], order: Sequence[str]
) -> str:
    """The canonical disagreement signature of one verdict row.

    Verdict-homogeneous rows collapse to ``all-Allow``/``all-Forbid``;
    anything else lists each verdict's models, e.g.
    ``Forbid:LKMM,LKMM-core|Allow:C11,x86-TSO,ARMv8,Power``.  Model
    names appear in battery column order, so equal rows always produce
    equal strings.
    """
    by_verdict: Dict[str, List[str]] = {}
    for name in order:
        verdict = row.get(name)
        if verdict is None:
            continue
        by_verdict.setdefault(verdict, []).append(name)
    if len(by_verdict) == 1:
        return f"all-{next(iter(by_verdict))}"
    parts = []
    # Verdicts ordered by first appearance in the column order: stable.
    for name in order:
        verdict = row.get(name)
        if verdict in by_verdict:
            parts.append(f"{verdict}:{','.join(by_verdict.pop(verdict))}")
    return "|".join(parts)


@dataclass
class SignatureBucket:
    signature: str
    count: int = 0
    #: Up to :data:`EXEMPLAR_LIMIT` representative test names.
    exemplars: List[str] = field(default_factory=list)
    families: Dict[str, int] = field(default_factory=dict)


EXEMPLAR_LIMIT = 5


@dataclass
class FamilyStats:
    family: str
    tests: int = 0
    #: Rows whose applicable, conclusive verdicts are not unanimous.
    disagreements: int = 0

    @property
    def density(self) -> float:
        return self.disagreements / self.tests if self.tests else 0.0


@dataclass
class MiningReport:
    """Everything the stress report renders, as data."""

    model_order: List[str]
    total: int = 0
    agreeing: int = 0
    inconclusive_rows: int = 0
    signatures: Dict[str, SignatureBucket] = field(default_factory=dict)
    families: Dict[str, FamilyStats] = field(default_factory=dict)
    #: Test names where a hardware model allows what LKMM forbids.
    soundness_alerts: List[Tuple[str, str]] = field(default_factory=list)

    def ranked_signatures(self) -> List[SignatureBucket]:
        return sorted(
            self.signatures.values(),
            key=lambda b: (-b.count, b.signature),
        )

    def ranked_families(self) -> List[FamilyStats]:
        return sorted(
            self.families.values(),
            key=lambda f: (-f.density, -f.tests, f.family),
        )


def _disagrees(row: Dict[str, str]) -> bool:
    """True when the row's *decided* verdicts are not unanimous.

    ``N/A`` cells (the model cannot express the test) and
    ``Inconclusive`` cells (the budget, not the test) don't count as
    disagreement on their own.
    """
    decided = {
        v for v in row.values() if v not in (NOT_APPLICABLE, INCONCLUSIVE)
    }
    return len(decided) > 1


def mine(
    result: SweepResult,
    specs: Sequence[ModelSpec] = CORPUS_MODELS,
) -> MiningReport:
    """Classify every completed row of a sweep."""
    order = [spec.name for spec in specs]
    hardware = [spec.name for spec in specs if spec.arch is not None]
    report = MiningReport(model_order=order)
    for name, row in sorted(result.matrix.items()):
        test = result.tests.get(name)
        family = test.family if test is not None else "?"
        report.total += 1
        stats = report.families.setdefault(family, FamilyStats(family))
        stats.tests += 1

        if INCONCLUSIVE in row.values():
            report.inconclusive_rows += 1
        if _disagrees(row):
            stats.disagreements += 1
        else:
            report.agreeing += 1

        signature = row_signature(row, order)
        bucket = report.signatures.setdefault(
            signature, SignatureBucket(signature)
        )
        bucket.count += 1
        if len(bucket.exemplars) < EXEMPLAR_LIMIT:
            bucket.exemplars.append(name)
        bucket.families[family] = bucket.families.get(family, 0) + 1

        if row.get(REFERENCE_MODEL) == FORBID:
            for hw in hardware:
                if row.get(hw) == ALLOW:
                    report.soundness_alerts.append((name, hw))
    return report
