"""Semantic cat-model analysis over a relational IR.

The package compiles the cat AST (:mod:`repro.cat.ast`) to a normalized,
hash-consed relational IR and builds three things on top of it:

* :mod:`repro.analysis.catir.analyses` — algebraic emptiness and
  subsumption inference, powering the CAT011–CAT014 findings that
  ``repro-lint`` reports alongside the surface lint;
* :mod:`repro.analysis.catir.diff` — structural model-to-model
  comparison (``repro-lint --diff-models``);
* :mod:`repro.analysis.catir.plan` — the compiled check plan that
  :class:`repro.cat.eval.CatModel` executes by default
  (``REPRO_CHECK_PLAN=0`` restores the statement-walking interpreter).

Module map: :mod:`~repro.analysis.catir.ir` (interned nodes and smart
constructors), :mod:`~repro.analysis.catir.facts` (ground truths about
the builtin environment — the single source the surface linter shares),
:mod:`~repro.analysis.catir.compile` (AST → IR).
"""

from repro.analysis.catir import facts, ir  # noqa: F401
from repro.analysis.catir.compile import (  # noqa: F401
    CatIRError,
    CompiledCheck,
    CompiledModel,
    compile_cat_file,
    compile_model,
    compile_source,
)
