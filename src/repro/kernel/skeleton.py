"""Per-trace shared state: the trace-invariant half of candidate executions.

Enumeration (herd's structure) fixes the events and the base relations
``po``/``addr``/``data``/``ctrl``/``rmw`` once per *trace combination* and
then sweeps the rf×co witness space.  Everything derivable from those
alone — ``loc``, ``int``, ``ext``, ``id``, ``po-loc``, the tag sets,
``crit``, the fence relations of the LK model, and the rf/co-independent
prefix of a cat model — is therefore identical across all candidates of
one combination.

A :class:`TraceSkeleton` is a small memo table attached to every candidate
of one combination: the first candidate computes each invariant value, the
rest reuse it.  Model layers opt in through
:meth:`repro.executions.candidate.CandidateExecution.shared_memo`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.obs import core as _obs


class TraceSkeleton:
    """Memo table shared by all rf×co candidates of one trace combination."""

    __slots__ = ("universe", "_memo", "vm_state")

    def __init__(self, universe: frozenset):
        self.universe = universe
        self._memo: Dict[Any, Any] = {}
        #: program token -> prelude state of :mod:`repro.kernel.vm`: the
        #: trace-invariant register file (shared by reference with every
        #: sibling candidate) plus the pre-judged invariant checks.
        self.vm_state: Dict[int, Any] = {}

    def memo(self, key: Any, compute: Callable[[], Any]) -> Any:
        try:
            value = self._memo[key]
        except KeyError:
            if _obs.ENABLED:
                _obs.count("skeleton.memo_miss")
            value = compute()
            self._memo[key] = value
            return value
        if _obs.ENABLED:
            _obs.count("skeleton.memo_hit")
        return value

    def seed(self, key: Any, value: Any) -> None:
        """Pre-populate a memo entry (used by the enumerator, which has
        already built some invariant relations)."""
        self._memo.setdefault(key, value)
