"""diy-style litmus-test generation (Section 5 of the paper).

The paper "used the diy7 tool to systematically generate thousands of
tests with cycles of edges (e.g., dependencies, reads-from, coherence) of
increasing size".  This package reimplements that idea: a litmus test is
synthesised from a *cycle of relaxation edges* — each edge is either a
communication (``Rfe``, ``Fre``, ``Coe``, changing thread, staying on one
location) or a program-order step (plain ``Pod*``, a dependency ``Dp*``,
or a fence, changing location within one thread).  The generated test's
``exists`` clause pins down exactly the execution exhibiting the cycle.
"""

from repro.diy.edges import Edge, EDGES, edge
from repro.diy.generator import (
    CycleError,
    canonical_cycle,
    generate,
    generate_cycles,
    name_of_cycle,
)

__all__ = [
    "Edge",
    "EDGES",
    "edge",
    "CycleError",
    "canonical_cycle",
    "generate",
    "generate_cycles",
    "name_of_cycle",
]
