"""Mechanised check of Theorem 1 (the RCU guarantee).

    **Theorem 1.** An LK candidate execution satisfies the Pb and RCU
    axioms iff it satisfies the fundamental law.

The paper proves this on paper (proof online); since our executions are
finite we can *decide* both sides and compare, which is what these
helpers do — over single executions, whole programs, or a corpus.  The
result "has practical significance because it enables tools to embed RCU
semantics in either of two ways" (Section 4): checking whether a critical
section spans a grace period (the law) or counting grace periods and
critical sections along cycles (the axiom).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.executions.candidate import CandidateExecution
from repro.executions.enumerate import candidate_executions
from repro.litmus.ast import Program
from repro.lkmm.model import LkmmRelations
from repro.rcu.axiom import rcu_axiom_holds
from repro.rcu.law import fundamental_law_holds


@dataclass
class Theorem1Result:
    """Outcome of checking Theorem 1 on one execution."""

    axioms_hold: bool  # Pb axiom and RCU axiom
    law_holds: bool

    @property
    def equivalent(self) -> bool:
        return self.axioms_hold == self.law_holds


def check_theorem1(execution: CandidateExecution) -> Theorem1Result:
    """Decide both sides of Theorem 1 for one execution."""
    relations = LkmmRelations(execution, with_rcu=True)
    pb_holds = relations.pb.is_acyclic()
    axioms = pb_holds and rcu_axiom_holds(execution)
    law = bool(fundamental_law_holds(execution))
    return Theorem1Result(axioms_hold=axioms, law_holds=law)


@dataclass
class Theorem1Summary:
    """Aggregated Theorem 1 check over many executions."""

    executions: int = 0
    agreements: int = 0
    counterexamples: List[CandidateExecution] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        return not self.counterexamples

    def describe(self) -> str:
        status = "holds" if self.holds else "FAILS"
        return (
            f"Theorem 1 {status} on {self.agreements}/{self.executions} "
            f"executions"
        )


def check_theorem1_on_program(
    program: Program, summary: Optional[Theorem1Summary] = None
) -> Theorem1Summary:
    """Check Theorem 1 on every candidate execution of ``program``."""
    summary = summary or Theorem1Summary()
    for execution in candidate_executions(program):
        result = check_theorem1(execution)
        summary.executions += 1
        if result.equivalent:
            summary.agreements += 1
        else:
            summary.counterexamples.append(execution)
    return summary


def check_theorem1_on_corpus(programs: Iterable[Program]) -> Theorem1Summary:
    """Check Theorem 1 over a whole corpus of litmus tests."""
    summary = Theorem1Summary()
    for program in programs:
        check_theorem1_on_program(program, summary)
    return summary
