"""LKMM-style data-race detection on candidate executions.

The paper's model (Sections 2–6) deliberately covers *marked* accesses
only — ``READ_ONCE``, ``WRITE_ONCE``, acquire/release, RMWs — and stays
silent about plain C loads and stores.  The real LKMM's headline follow-on
closed exactly that gap: flag *data races*, i.e. conflicting plain
accesses that no synchronisation orders, in the happens-before tradition
of "Herding Cats"' candidate-execution framework.

This module reconstructs that analysis from the relations the repository
already computes (:class:`repro.lkmm.model.LkmmRelations`):

1. Build a *race-ordering* relation per execution.  It is the model's own
   ``hb``/``pb`` pair with one change: the external reads-from edges that
   feed ``hb`` are restricted to pairs of **marked** accesses.  A marked
   ``rfe`` is a synchronisation (message passing through ``ONCE`` or
   release/acquire); a plain read observing a plain write is precisely the
   *symptom* of a race and must not be allowed to order it away.  All
   fence-derived orderings (``ppo``, ``prop``, strong fences, grace
   periods) apply to plain accesses unchanged — that is what makes the
   classic "plain payload protected by ``smp_wmb``/``smp_rmb``" idiom
   race-free::

       race-hb := ((prop \\ id) & int) | ppo | (rfe & (Marked × Marked))
       race-pb := prop ; strong-fence ; race-hb*
       race-order := (race-hb | race-pb)+

2. Two events **race** when they access the same location from different
   threads, at least one is a write, at least one is plain, and the
   race-order relates them in neither direction.  Initialising writes
   never race (they are ordered before everything).

3. A litmus test is **racy** when *some* consistent (model-allowed)
   candidate execution contains a race; the execution and the pair are
   kept as the witness, with a human-readable explanation built on the
   :mod:`repro.lkmm.explain` machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.events import Event, PLAIN
from repro.executions.candidate import CandidateExecution
from repro.executions.enumerate import candidate_executions
from repro.litmus.ast import Program
from repro.lkmm.explain import explain_race
from repro.lkmm.model import LinuxKernelModel, LkmmRelations
from repro.relations import Relation

#: Classification vocabulary, mirroring the Allow/Forbid verdict style.
RACY = "Racy"
RACE_FREE = "Race-free"


def race_order(relations: LkmmRelations) -> Relation:
    """The happens-before used for race checking (see module docstring)."""
    x = relations.x
    plain = x.tagged(PLAIN)
    marked = x.accesses - plain
    sync_rfe = x.rfe.restrict(domain=marked, range_=marked)
    race_hb = (
        ((relations.prop - x.identity) & x.int_)
        | relations.ppo
        | sync_rfe
    )
    race_pb = relations.prop.sequence(relations.strong_fence).sequence(
        race_hb.reflexive_transitive_closure()
    )
    return (race_hb | race_pb).transitive_closure()


def races_in(
    execution: CandidateExecution,
    relations: Optional[LkmmRelations] = None,
) -> List[Tuple[Event, Event]]:
    """All racing pairs of one execution, sorted for determinism."""
    rel = relations if relations is not None else LkmmRelations(execution)
    order = race_order(rel)
    accesses = sorted(
        (e for e in execution.events if e.is_memory_access and not e.is_init),
        key=lambda e: e.eid,
    )
    pairs: List[Tuple[Event, Event]] = []
    for i, a in enumerate(accesses):
        for b in accesses[i + 1:]:
            if a.tid == b.tid or a.loc != b.loc:
                continue
            if not (a.is_write or b.is_write):
                continue
            if not (a.has_tag(PLAIN) or b.has_tag(PLAIN)):
                continue
            if (a, b) in order or (b, a) in order:
                continue
            pairs.append((a, b))
    return pairs


@dataclass
class RaceReport:
    """The race verdict for one litmus test.

    Attributes:
        name: The test name.
        racy: Whether any consistent execution contains a data race.
        pair: The racing event pair of the witness execution (if racy).
        witness: The consistent execution exhibiting the race (if racy).
        candidates: Candidate executions enumerated.
        consistent: How many of them the model allowed (and were scanned).
        explanation: Human-readable walk-through of the witness.
    """

    name: str
    racy: bool
    pair: Optional[Tuple[Event, Event]] = None
    witness: Optional[CandidateExecution] = None
    candidates: int = 0
    consistent: int = 0
    explanation: str = ""

    @property
    def verdict(self) -> str:
        return RACY if self.racy else RACE_FREE

    def describe(self) -> str:
        head = f"{self.name}: {self.verdict} ({self.consistent} consistent / {self.candidates} candidates)"
        if not self.racy:
            return head
        return head + "\n" + self.explanation

    def findings(self) -> List["Finding"]:
        """The report as zero or one ``data-race`` lint finding, so
        ``repro-lint --races`` reports and gates races like any other
        error-severity check."""
        if not self.racy:
            return []
        detail = ""
        if self.pair is not None:
            first, second = self.pair
            detail = (
                f" (P{first.tid} {first.kind} of {first.loc!r} vs "
                f"P{second.tid} {second.kind} of {second.loc!r})"
            )
        return [
            Finding.of(
                self.name,
                "data-race",
                f"a consistent execution contains a data race{detail}; "
                "see `repro-herd --check-races` for the full walk-through",
            )
        ]


def check_races(
    program: Program, model: Optional[LinuxKernelModel] = None
) -> RaceReport:
    """Classify ``program`` as racy or race-free.

    ``model`` filters candidate executions to the consistent ones and must
    be a :class:`LinuxKernelModel` (the race ordering is LKMM-derived;
    pass ``LinuxKernelModel(with_rcu=False)`` to drop grace-period
    ordering).  Scanning stops at the first racy execution.
    """
    model = model or LinuxKernelModel()
    report = RaceReport(name=program.name, racy=False)
    for execution in candidate_executions(
        program, require_sc_per_location=True
    ):
        report.candidates += 1
        relations = model.relations(execution)
        if not model.check(execution, relations=relations).allowed:
            continue
        report.consistent += 1
        pairs = races_in(execution, relations=relations)
        if pairs:
            report.racy = True
            report.pair = pairs[0]
            report.witness = execution
            report.explanation = explain_race(
                execution, *pairs[0], relations=relations
            )
            break
    return report


def classify_library(
    names: Optional[Sequence[str]] = None,
    model: Optional[LinuxKernelModel] = None,
) -> Dict[str, RaceReport]:
    """Race-classify named library tests (default: the whole library)."""
    from repro.litmus import library

    model = model or LinuxKernelModel()
    return {
        name: check_races(library.get(name), model=model)
        for name in (names if names is not None else library.all_names())
    }
