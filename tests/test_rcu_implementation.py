"""Tests for the Figure 15 implementation and the Theorem 2 check."""

import pytest

from repro.herd import run_litmus
from repro.litmus import dsl, library
from repro.litmus.ast import If, Load, Store
from repro.lkmm import LinuxKernelModel
from repro.rcu import inline_rcu, verify_implementation
from repro.rcu.implementation import (
    CS_MASK,
    GC,
    GP_LOCK,
    GP_PHASE,
    _Names,
    _rc,
    read_lock_body,
    read_unlock_body,
    synchronize_body,
)


class TestBuildingBlocks:
    def test_constants_match_figure15(self):
        assert GP_PHASE == 0x10000
        assert CS_MASK == 0x0FFFF

    def test_specialised_lock_shape(self):
        body = read_lock_body(0, _Names(), full=False)
        assert isinstance(body[0], Load)  # READ_ONCE(gc)
        assert isinstance(body[1], Store)  # WRITE_ONCE(rc[i], ...)
        assert body[2].tag == "mb"  # smp_mb()

    def test_full_lock_has_nesting_branch(self):
        body = read_lock_body(0, _Names(), full=True)
        assert isinstance(body[1], If)
        assert body[1].orelse  # the increment branch

    def test_unlock_decrements_in_full_mode(self):
        body = read_unlock_body(0, _Names(), full=True)
        assert body[0].tag == "mb"
        assert isinstance(body[2], Store)

    def test_synchronize_structure(self):
        body = synchronize_body([0], _Names(), bound=1)
        # smp_mb, lock, ..., unlock, smp_mb (Figure 15 lines 43-50).
        assert body[0].tag == "mb"
        assert body[-1].tag == "mb"
        from repro.litmus.ast import Rmw

        assert isinstance(body[1], Rmw)  # mutex_lock via spin_lock
        assert body[1].require_read_value == 0


class TestInlining:
    def test_inline_replaces_all_rcu_events(self):
        inlined = inline_rcu(library.get("RCU-MP"))
        from repro.litmus.ast import Fence

        for thread in inlined.threads:
            for ins in thread.body:
                if isinstance(ins, Fence):
                    assert not ins.tag.startswith("rcu")
                    assert ins.tag != "sync-rcu"

    def test_inline_adds_implementation_state(self):
        inlined = inline_rcu(library.get("RCU-MP"))
        assert inlined.init[GC] == 1
        assert inlined.init[GP_LOCK] == 0
        assert inlined.init[_rc(0)] == 0

    def test_inline_preserves_condition(self):
        program = library.get("RCU-MP")
        assert inline_rcu(program).condition is program.condition

    def test_name_suffixed(self):
        assert inline_rcu(library.get("RCU-MP")).name == "RCU-MP+urcu"


class TestTheorem2:
    def test_rcu_mp_implementation_correct(self):
        report = verify_implementation(library.get("RCU-MP"), loop_bound=1)
        assert report.holds, report.describe()
        assert report.impl_allowed > 0
        assert report.impl_outcomes  # non-vacuous

    def test_forbidden_outcome_stays_forbidden(self):
        program = library.get("RCU-MP")
        inlined = inline_rcu(program, loop_bound=1)
        result = run_litmus(
            LinuxKernelModel(), inlined, require_sc_per_location=True
        )
        assert result.verdict == "Forbid"

    def test_deferred_free_implementation_correct(self):
        report = verify_implementation(
            library.get("RCU-deferred-free"), loop_bound=1
        )
        assert report.holds, report.describe()

    def test_report_projection_hides_internals(self):
        report = verify_implementation(library.get("RCU-MP"), loop_bound=1)
        for outcome in report.impl_outcomes:
            for key, entries in outcome:
                for entry in entries:
                    if key == "regs":
                        (tid, name), _ = entry
                        assert not name.startswith("__")
                    else:
                        loc, _ = entry
                        assert not loc.startswith("__")
