"""Candidate-independent lint for cat models.

The cat evaluator (:mod:`repro.cat.eval`) only reports an unbound
identifier when a check actually *evaluates* the offending expression over
some candidate execution — a typo in a rarely-exercised branch of a model
can therefore survive until long after it was introduced.  This pass walks
a parsed :class:`~repro.cat.ast.CatFile` without any execution and flags:

* ``undefined-identifier`` — a name that is neither a builtin of the
  evaluation environment nor bound by an earlier ``let``;
* ``unknown-base-set`` — the same, for capitalised names, which by cat
  convention denote annotation sets (``Once``, ``Acquire``, ...): the
  likeliest typo in a model is a misspelt tag set;
* ``undefined-function`` — an application ``f(...)`` of an unknown
  function;
* ``unused-binding`` — a ``let`` binding never referenced by any later
  expression or check;
* ``shadowing`` — a ``let`` rebinding a builtin or an earlier binding;
* ``duplicate-check-name`` — two checks sharing one ``as`` name, which
  makes their violations indistinguishable in reports;
* ``missing-include`` — an ``include`` of a file absent from the models
  directory;
* ``sort-mismatch`` — every expression is typed as an *event set* or a
  *relation* (cat's two sorts) by a bottom-up inference over the builtin
  environment and earlier ``let`` bindings.  Mixing the sorts where herd
  would reject the model is an error: a set operand of ``;``, ``^-1``,
  ``?``, ``+``, ``*`` or of a set/relation union (the evaluator here
  silently coerces the set to an identity relation — write ``[S]`` if
  that is intended), a relation operand of ``S * T``, ``[S]`` or
  ``fencerel``, a set argument of ``domain``/``range``.  Function
  parameters and recursive bindings type as unknown/relation, so
  inference never guesses;
* ``empty-intersection`` — an ``&`` of two event sets that is empty *by
  construction*: distinct event kinds (``R & W`` — reads, writes and
  fences are pairwise disjoint, ``M`` is ``R | W``, ``IW`` is a subset
  of ``W``) or two distinct annotation sets (every event carries exactly
  one tag, so ``Acquire & Release`` can never hold events).  The check
  never fires through bindings or tag-vs-kind pairs, only on provably
  empty atoms.  The disjointness facts live in
  :mod:`repro.analysis.catir.facts`, the same tables the algebraic
  analyses use, so the surface and semantic passes cannot disagree.

On top of the surface walk, models that *compile* to the relational IR
(:mod:`repro.analysis.catir`) also get the semantic analyses — CAT011
(dead check), CAT012 (redundant check), CAT013 (unreachable binding),
CAT014 (implied acyclicity); see
:func:`repro.analysis.catir.analyses.analyze_cat_file`.  Any of those
codes can be silenced with a ``(* lint: allow CAT011 *)`` comment in the
model source.

The builtin environment is derived from the same tables the evaluator
uses (:func:`repro.cat.eval.builtin_environment` and
:data:`repro.cat.eval.TAG_SETS`), so the two cannot drift apart silently.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.catir.facts import (  # noqa: F401  (re-exported API)
    BUILTIN_FUNCTIONS,
    BUILTIN_RELATIONS,
    BUILTIN_SETS,
    base_sets_disjoint,
)
from repro.analysis.findings import Finding, describe_findings  # noqa: F401
from repro.cat import MODELS_DIR, TAG_SETS, parse_cat  # noqa: F401
from repro.cat import ast as C

BUILTINS = BUILTIN_RELATIONS | BUILTIN_SETS

#: The two cat sorts, plus "don't know" (function parameters, results of
#: user-defined functions applied to unknowns, names already reported as
#: undefined).  UNKNOWN never produces a mismatch: inference only reports
#: what it can prove.
SET = "set"
REL = "relation"
UNKNOWN = "unknown"


def lint_cat(
    cat_file: C.CatFile,
    source: Optional[str] = None,
    suppress: Sequence[str] = (),
) -> List[Finding]:
    """Lint one parsed cat model; returns the findings (empty if clean).

    Runs the surface walk below, then the semantic analyses of
    :mod:`repro.analysis.catir.analyses` when the model compiles.
    ``suppress`` drops findings by code (from ``(* lint: allow ... *)``
    comments, which only the source-level entry points can see).
    """
    from repro.analysis.catir.analyses import analyze_cat_file

    linter = _CatLinter(source or cat_file.name)
    linter.run(cat_file)
    findings = linter.finish()
    findings.extend(
        analyze_cat_file(cat_file, source=source or cat_file.name)
    )
    if suppress:
        blocked = frozenset(suppress)
        findings = [f for f in findings if f.code not in blocked]
    return findings


def lint_cat_source(text: str, name: str = "cat-model") -> List[Finding]:
    """Lint cat model source text."""
    from repro.analysis.catir.analyses import parse_suppressions

    return lint_cat(
        parse_cat(text, default_name=name),
        source=name,
        suppress=parse_suppressions(text),
    )


def lint_cat_path(path) -> List[Finding]:
    """Lint a cat model file."""
    from repro.analysis.catir.analyses import parse_suppressions

    path = Path(path)
    text = path.read_text()
    cat_file = parse_cat(text, default_name=path.stem, path=str(path))
    return lint_cat(
        cat_file, source=str(path), suppress=parse_suppressions(text)
    )


def lint_all_models() -> Dict[str, List[Finding]]:
    """Lint every shipped model in ``repro/cat/models/``."""
    return {
        path.name: lint_cat_path(path)
        for path in sorted(MODELS_DIR.glob("*.cat"))
    }


class _CatLinter:
    """Walks statements in order, tracking bindings and their uses."""

    def __init__(self, source: str):
        self.source = source
        self.findings: List[Finding] = []
        #: User bindings, in definition order: name -> kind ("value"/"function").
        self.bindings: Dict[str, str] = {}
        #: Inferred sort per binding (for functions: of the body).
        self.sorts: Dict[str, str] = {}
        self.used: Set[str] = set()
        self.check_names: Set[str] = set()
        self.included: Set[str] = set()

    # -- driving ---------------------------------------------------------

    def run(self, cat_file: C.CatFile) -> None:
        for statement in cat_file.statements:
            if isinstance(statement, C.Include):
                self._include(statement)
            elif isinstance(statement, C.Let):
                self._let(statement)
            elif isinstance(statement, C.Check):
                self._check(statement)

    def finish(self) -> List[Finding]:
        for name in self.bindings:
            if name not in self.used:
                self._report(
                    "unused-binding",
                    f"'let {name}' is never used by a later definition or check",
                )
        return self.findings

    def _report(self, category: str, message: str) -> None:
        self.findings.append(Finding.of(self.source, category, message))

    # -- statements ------------------------------------------------------

    def _include(self, statement: C.Include) -> None:
        if statement.path in self.included:
            self._report(
                "duplicate-include", f'"{statement.path}" included twice'
            )
            return
        self.included.add(statement.path)
        path = MODELS_DIR / statement.path
        if not path.exists():
            self._report(
                "missing-include",
                f'included file "{statement.path}" not found in {MODELS_DIR}',
            )
            return
        # Bindings of the included file become visible here, exactly as in
        # the evaluator; its own findings are reported against its name.
        included = parse_cat(
            path.read_text(), default_name=path.stem, path=str(path)
        )
        self.run(included)

    def _let(self, statement: C.Let) -> None:
        group = {binding.name for binding in statement.bindings}
        if len(group) < len(statement.bindings):
            self._report(
                "shadowing",
                "a 'let ... and ...' group binds the same name twice",
            )
        if statement.recursive:
            # Mutually recursive: all names are in scope in every body,
            # and `let rec` only makes sense for relations (a fixpoint of
            # event sets has no cat syntax), so pre-type them as such.
            for binding in statement.bindings:
                self._bind(binding, REL)
            for binding in statement.bindings:
                self._expr(binding.expr, extra=set(binding.params))
        else:
            for binding in statement.bindings:
                sort = self._expr(binding.expr, extra=set(binding.params))
                self._bind(binding, sort)

    def _bind(self, binding: C.LetBinding, sort: str) -> None:
        if binding.name in BUILTINS or binding.name in BUILTIN_FUNCTIONS:
            self._report(
                "shadowing",
                f"'let {binding.name}' shadows a builtin of the same name",
            )
        elif binding.name in self.bindings:
            self._report(
                "shadowing",
                f"'let {binding.name}' shadows an earlier binding",
            )
        self.bindings[binding.name] = "function" if binding.params else "value"
        self.sorts[binding.name] = sort

    def _check(self, statement: C.Check) -> None:
        self._expr(statement.expr, extra=set())
        if statement.name is not None:
            if statement.name in self.check_names:
                self._report(
                    "duplicate-check-name",
                    f"two checks are named 'as {statement.name}'",
                )
            self.check_names.add(statement.name)

    # -- expressions (walk + sort inference) -----------------------------

    def _expr(self, expr: C.CatExpr, extra: Set[str]) -> str:
        """Walk an expression; returns its inferred sort."""
        if isinstance(expr, C.Id):
            return self._name(expr.name, extra)
        if isinstance(expr, C.EmptyRel):
            return REL
        if isinstance(expr, C.App):
            return self._app(expr, extra)
        if isinstance(expr, (C.Union, C.Inter, C.Diff)):
            op = {C.Union: "|", C.Inter: "&", C.Diff: "\\"}[type(expr)]
            lhs = self._expr(expr.lhs, extra)
            rhs = self._expr(expr.rhs, extra)
            if {lhs, rhs} == {SET, REL}:
                self._report(
                    "sort-mismatch",
                    f"'{op}' mixes an event set and a relation — write "
                    "[S] to lift the set to an identity relation if that "
                    "is intended",
                )
                return REL
            if isinstance(expr, C.Inter) and lhs == rhs == SET:
                self._check_empty_intersection(expr)
            if lhs == rhs:
                return lhs
            return lhs if rhs == UNKNOWN else rhs
        if isinstance(expr, C.Seq):
            self._expect(expr.lhs, extra, REL, "';'")
            self._expect(expr.rhs, extra, REL, "';'")
            return REL
        if isinstance(expr, C.Cartesian):
            self._expect(expr.lhs, extra, SET, "'*'")
            self._expect(expr.rhs, extra, SET, "'*'")
            return REL
        if isinstance(expr, C.Compl):
            # '~' is polymorphic: complements a set or a relation.
            return self._expr(expr.operand, extra)
        if isinstance(expr, C.Inverse):
            self._expect(expr.operand, extra, REL, "'^-1'")
            return REL
        if isinstance(expr, C.Opt):
            self._expect(expr.operand, extra, REL, "'?'")
            return REL
        if isinstance(expr, C.Plus):
            self._expect(expr.operand, extra, REL, "'+'")
            return REL
        if isinstance(expr, C.Star):
            self._expect(expr.operand, extra, REL, "'*' (closure)")
            return REL
        if isinstance(expr, C.SetId):
            self._expect(expr.operand, extra, SET, "'[...]'")
            return REL
        return UNKNOWN

    def _expect(
        self, operand: C.CatExpr, extra: Set[str], wanted: str, where: str
    ) -> None:
        got = self._expr(operand, extra)
        if got not in (wanted, UNKNOWN):
            self._report(
                "sort-mismatch",
                f"{where} expects a {wanted} operand, got a {got}",
            )

    def _app(self, expr: C.App, extra: Set[str]) -> str:
        if expr.func in self.bindings:
            self.used.add(expr.func)
            if self.bindings[expr.func] != "function":
                self._report(
                    "undefined-function",
                    f"{expr.func!r} is a plain binding, not a function",
                )
            for arg in expr.args:
                self._expr(arg, extra)
            return self.sorts.get(expr.func, UNKNOWN)
        if expr.func not in BUILTIN_FUNCTIONS:
            self._report(
                "undefined-function", f"unknown function {expr.func!r}"
            )
            for arg in expr.args:
                self._expr(arg, extra)
            return UNKNOWN
        if expr.func in ("domain", "range"):
            for arg in expr.args:
                self._expect(arg, extra, REL, f"'{expr.func}'")
            return SET
        # fencerel
        for arg in expr.args:
            self._expect(arg, extra, SET, "'fencerel'")
        return REL

    def _name(self, name: str, extra: Set[str]) -> str:
        if name in extra:
            return UNKNOWN
        if name in BUILTIN_SETS:
            return SET
        if name in BUILTIN_RELATIONS:
            return REL
        if name in self.bindings:
            self.used.add(name)
            return self.sorts.get(name, UNKNOWN)
        if name[:1].isupper():
            known = ", ".join(sorted(BUILTIN_SETS))
            self._report(
                "unknown-base-set",
                f"unknown base set {name!r} (known sets: {known})",
            )
        else:
            self._report(
                "undefined-identifier", f"undefined identifier {name!r}"
            )
        return UNKNOWN

    def _check_empty_intersection(self, expr: C.Inter) -> None:
        """Flag ``a & b`` when both sides are builtin-set atoms that can
        share no event (facts from :mod:`repro.analysis.catir.facts`)."""
        if not isinstance(expr.lhs, C.Id) or not isinstance(expr.rhs, C.Id):
            return
        a, b = expr.lhs.name, expr.rhs.name
        reason = base_sets_disjoint(a, b)
        if reason is not None:
            self._report(
                "empty-intersection",
                f"'{a} & {b}' is empty by construction: {reason}",
            )
