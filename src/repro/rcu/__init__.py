"""Read-Copy-Update: the paper's Section 4 and Section 6.

* :mod:`repro.rcu.axiom` — the RCU axiom of Figure 12 (counting grace
  periods against critical sections along cycles);
* :mod:`repro.rcu.law` — the fundamental law ("read-side critical
  sections cannot span grace periods"), via precedes functions;
* :mod:`repro.rcu.theorems` — the mechanised check of Theorem 1 (the
  axiom and the law agree) over finite executions;
* :mod:`repro.rcu.implementation` — the userspace RCU implementation of
  Figure 15, its inlining transformation P -> P', and the empirical check
  of Theorem 2 (allowed executions of P' project to allowed executions
  of P).
"""

from repro.rcu.axiom import rcu_axiom_holds, grace_periods, critical_sections
from repro.rcu.law import (
    PrecedesFunction,
    RSCS,
    fundamental_law_holds,
    rcu_fence,
    enlarged_pb,
)
from repro.rcu.theorems import Theorem1Result, check_theorem1, check_theorem1_on_program
from repro.rcu.implementation import (
    inline_rcu,
    verify_implementation,
    ImplementationReport,
)

__all__ = [
    "rcu_axiom_holds",
    "grace_periods",
    "critical_sections",
    "PrecedesFunction",
    "RSCS",
    "fundamental_law_holds",
    "rcu_fence",
    "enlarged_pb",
    "Theorem1Result",
    "check_theorem1",
    "check_theorem1_on_program",
    "inline_rcu",
    "verify_implementation",
    "ImplementationReport",
]
