"""Explaining *why* the model forbids an execution.

The paper walks through its figures by exhibiting the cycle that violates
an axiom (e.g. for Figure 4: ``a -ppo-> b -rfe-> c -ppo-> d -rfe-> a``, a
cycle in hb).  This module reconstructs such explanations mechanically: for
each violated axiom it reports the cycle and annotates every step with the
strongest primitive relation that justifies it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.events import Event
from repro.executions.candidate import CandidateExecution
from repro.lkmm.model import LinuxKernelModel, LkmmRelations
from repro.model import ModelResult
from repro.relations import Relation


def _edge_name(
    rel: LkmmRelations, a: Event, b: Event
) -> str:
    """The most informative name for the edge (a, b)."""
    x = rel.x
    named: Sequence[Tuple[str, Relation]] = (
        ("rfe", x.rfe),
        ("rfi", x.rfi),
        ("coe", x.coe),
        ("coi", x.coi),
        ("fre", x.fre),
        ("fri", x.fri),
        ("addr", x.addr),
        ("data", x.data),
        ("ctrl", x.ctrl),
        ("mb", rel.mb),
        ("wmb", rel.wmb),
        ("rmb", rel.rmb),
        ("rb-dep", rel.rb_dep),
        ("po-rel", rel.po_rel),
        ("acq-po", rel.acq_po),
        ("gp", rel.gp),
        ("rscs", rel.rscs),
        ("ppo", rel.ppo),
        ("cumul-fence", rel.cumul_fence),
        ("prop", rel.prop),
        ("hb", rel.hb),
        ("pb", rel.pb),
        ("po", x.po),
    )
    for name, relation in named:
        if (a, b) in relation:
            return name
    return "?"


def explain_race(
    execution: CandidateExecution,
    a: Event,
    b: Event,
    relations: Optional[LkmmRelations] = None,
) -> str:
    """A human-readable explanation of a data race between ``a`` and ``b``.

    Used by :mod:`repro.analysis.races`: the pair is conflicting (same
    location, different threads, at least one write, at least one plain)
    and unordered by the race happens-before.  The explanation names the
    strongest relation that *does* connect the pair — typically a raw
    communication edge (``rfe``, ``coe``, ``fre``), which plain accesses do
    not turn into synchronisation — or reports the pair fully unordered.
    """
    rel = relations if relations is not None else LkmmRelations(execution)
    lines: List[str] = [execution.describe()]

    def _name(e: Event) -> str:
        return e.label or f"e{e.eid}"

    plain_sides = [e for e in (a, b) if e.has_tag("plain")]
    lines.append(
        f"data race on {a.loc!r}: {a!r} (T{a.tid}) vs {b!r} (T{b.tid}), "
        f"{'both' if len(plain_sides) == 2 else 'one side'} plain"
    )
    forward = _edge_name(rel, a, b)
    backward = _edge_name(rel, b, a)
    if forward != "?":
        lines.append(
            f"  {_name(a)} -{forward}-> {_name(b)} connects them, but a "
            f"{forward} edge between plain accesses is not synchronisation"
        )
    elif backward != "?":
        lines.append(
            f"  {_name(b)} -{backward}-> {_name(a)} connects them, but a "
            f"{backward} edge between plain accesses is not synchronisation"
        )
    else:
        lines.append(
            f"  no LKMM relation orders {_name(a)} and {_name(b)} at all"
        )
    lines.append(
        "  neither direction is in the race happens-before "
        "(ppo | marked-rfe | prop-derived orderings)"
    )
    return "\n".join(lines)


def explain_forbidden(
    execution: CandidateExecution, model: Optional[LinuxKernelModel] = None
) -> str:
    """A human-readable explanation of a forbidden execution.

    Returns ``"allowed"`` if the model allows the execution.
    """
    model = model or LinuxKernelModel()
    result = model.check(execution)
    if result.allowed:
        return "allowed"
    rel = model.relations(execution)
    lines: List[str] = [execution.describe()]
    for violation in result.violations:
        lines.append(f"violated axiom: {violation.axiom} ({violation.kind})")
        if violation.kind in ("acyclic", "irreflexive") and violation.witness:
            cycle = list(violation.witness)
            if violation.kind == "irreflexive" and len(cycle) == 2:
                a, b = cycle
                lines.append(
                    f"  {a.label or a.eid} is rcu-path-before itself"
                )
                continue
            steps = []
            for a, b in zip(cycle, cycle[1:]):
                steps.append(
                    f"{a.label or a.eid} -{_edge_name(rel, a, b)}-> "
                )
            steps.append(cycle[-1].label or str(cycle[-1].eid))
            lines.append("  cycle: " + "".join(steps))
        elif violation.kind == "empty":
            for a, b in violation.witness:
                lines.append(
                    f"  rmw pair ({a.label or a.eid},{b.label or b.eid}) "
                    "has an intervening external write (fre;coe)"
                )
    return "\n".join(lines)
