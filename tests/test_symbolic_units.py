"""Unit tests for the symbolic prover's internals.

The end-to-end contract (soundness, coverage, drift) lives in
``test_static_verdicts.py``; this module pins the *mechanisms* — the
axiom-to-order-table lowering, the condition footprint, the
unsat-condition shortcut, and the scaling property the pre-pass exists
for: a fence-chain family whose candidate space doubles per thread is
decided with zero candidates enumerated.
"""

from __future__ import annotations

import pytest

from repro.analysis.symbolic import decide
from repro.analysis.symbolic.footprint import (
    guaranteed_edges,
    resolve_footprint,
)
from repro.analysis.symbolic.skeleton import extract_skeleton
from repro.analysis.symbolic.tables import order_table, ordered_shapes
from repro.cat import load_model
from repro.herd import run_litmus
from repro.kernel import config as kconfig
from repro.litmus import library
from repro.litmus.parser import parse_litmus
from repro.obs import core as obs


def _chain(threads, middle_fence="smp_mb"):
    """An ISA2-style message chain: P0 raises flag x1 after storing x0,
    each middle thread forwards the flag under ``middle_fence``, the
    last thread reads back x0.  With ``smp_mb`` the outcome is forbidden
    under LKMM; with ``smp_rmb`` (which does not order R->W) allowed."""
    n = threads
    lines = [
        f"C chain-{middle_fence}-{n}",
        "{ " + " ".join(f"x{i}=0;" for i in range(n)) + " }",
        "P0(int *x0, int *x1)\n{\n    WRITE_ONCE(*x0, 1);\n"
        "    smp_wmb();\n    WRITE_ONCE(*x1, 1);\n}",
    ]
    for i in range(1, n - 1):
        lines.append(
            f"P{i}(int *x{i}, int *x{i + 1})\n{{\n"
            f"    int r0 = READ_ONCE(*x{i});\n    {middle_fence}();\n"
            f"    WRITE_ONCE(*x{i + 1}, 1);\n}}"
        )
    lines.append(
        f"P{n - 1}(int *x{n - 1}, int *x0)\n{{\n"
        f"    int r0 = READ_ONCE(*x{n - 1});\n    smp_rmb();\n"
        f"    int r1 = READ_ONCE(*x0);\n}}"
    )
    cond = " /\\ ".join(f"{i}:r0=1" for i in range(1, n))
    lines.append(f"exists ({cond} /\\ {n - 1}:r1=0)")
    return parse_litmus("\n".join(lines))


# ---------------------------------------------------------------------------
# Order tables


def test_order_table_lkmm_fences_order_po():
    table = order_table(load_model("lkmm"))
    # A full barrier orders every access pair; the lightweight fences
    # order their documented subsets; bare program order orders nothing.
    for shape in ("MbdRR", "MbdRW", "MbdWR", "MbdWW"):
        assert table[shape], shape
    assert table["WmbdWW"]
    assert table["RmbdRR"]
    assert table["PodWR"] == ()
    assert table["PodWW"] == ()


def test_order_table_tso_relaxes_only_store_load():
    table = order_table(load_model("tso"))
    # The store buffer: W->R is the one program-order TSO relaxes.
    assert table["PodWR"] == ()
    for shape in ("PodRR", "PodRW", "PodWW", "DpAddrdR"):
        assert table[shape], shape
    # Communication edges are ordered outright.
    for shape in ("Rfe", "Fre", "Coe"):
        assert table[shape], shape


def test_order_table_sc_orders_every_posed_shape():
    table = order_table(load_model("sc"))
    # SC orders every program-order and communication shape; the only
    # permissible empty rows are shapes the lowering cannot even pose
    # (no fixed endpoint kinds).
    for name, axioms in table.items():
        if name.startswith(("Pod", "Mbd", "Dp")) or name in (
            "Rfe",
            "Fre",
            "Coe",
        ):
            assert axioms == ("sequential-consistency",), name


def test_ordered_shapes_sorted_and_nonempty():
    shapes = ordered_shapes(load_model("lkmm"))
    assert shapes == tuple(sorted(shapes))
    assert "MbdWR" in shapes


# ---------------------------------------------------------------------------
# Condition footprint


def test_footprint_pins_mp_edges():
    program = library.get("MP+wmb+rmb")
    skeleton = extract_skeleton(program)
    footprint = resolve_footprint(skeleton, program.condition.body)
    # r0=1 pins the rf edge from P0's flag store; r1=0 pins reading the
    # initial value, i.e. an fr edge to P0's data store.
    assert footprint.reg_values == {(1, "r0"): 1, (1, "r1"): 0}
    edges = guaranteed_edges(skeleton, footprint)
    assert edges.rf == frozenset({((0, 2), (1, 0))})
    assert edges.fr == frozenset({((1, 2), (0, 0))})
    assert edges.co == frozenset()


def test_unsatisfiable_condition_is_forbid():
    program = parse_litmus(
        """
C MP+impossible
{ x=0; y=0; }
P0(int *x, int *y)
{
    WRITE_ONCE(*x, 1);
    smp_wmb();
    WRITE_ONCE(*y, 1);
}
P1(int *x, int *y)
{
    int r0 = READ_ONCE(*y);
    smp_rmb();
    int r1 = READ_ONCE(*x);
}
exists (1:r0=7)
"""
    )
    decision = decide(
        load_model("lkmm"), program, require_sc_per_location=True
    )
    assert decision is not None
    assert decision.verdict == "Forbid"
    assert decision.reason == "unsat-condition"


# ---------------------------------------------------------------------------
# The scaling property: chains


@pytest.mark.parametrize("threads", [3, 4, 5, 6])
def test_forbidden_chain_is_proved_without_enumeration(threads):
    program = _chain(threads, middle_fence="smp_mb")
    model = load_model("lkmm")
    with obs.collect() as collector:
        decision = decide(model, program, require_sc_per_location=True)
    assert decision is not None
    assert decision.verdict == "Forbid"
    assert decision.reason == "critical-cycle"
    assert collector.counters.get("enumerate.candidates", 0) == 0
    # The proof never contradicts the kernel.
    with kconfig.use_static_verdict(False):
        result = run_litmus(model, program, require_sc_per_location=True)
    assert result.verdict == "Forbid"


def test_allowed_chain_witness_matches_kernel():
    # smp_rmb does not order read->write, so the chain becomes allowed —
    # and the static Allow is a kernel-confirmed witness, not a guess.
    program = _chain(4, middle_fence="smp_rmb")
    model = load_model("lkmm")
    decision = decide(model, program, require_sc_per_location=True)
    assert decision is not None
    assert decision.verdict == "Allow"
    assert decision.reason == "witness-confirmed"
    with kconfig.use_static_verdict(False):
        result = run_litmus(model, program, require_sc_per_location=True)
    assert result.verdict == "Allow"
