"""Sweep checkpointing: resume an interrupted verdict sweep.

A :class:`SweepJournal` is an append-only JSON-lines file; each line
records one completed (test × models) verdict row::

    {"test": "MP+wmb+rmb", "models": ["C11", "LKMM"],
     "verdicts": {"LKMM": "Forbid", "C11": "Forbid"}}

Rows are flushed (and fsync'd) as they complete, so a sweep killed
mid-flight loses at most the in-progress tests.  On reload, rows whose
model set differs from the current sweep's are ignored — a journal from a
different model mix never contaminates a resume — and a torn trailing
line (the crash arrived mid-write) is skipped rather than fatal.

At corpus scale test *names* stop being trustworthy identities: two
corpus revisions can emit a test of the same cycle name whose program
differs (a decoration change, a generator fix).  Rows may therefore carry
a ``digest`` — the canonical AST hash of the program
(:func:`repro.corpus.generate.program_digest`) — and
:meth:`SweepJournal.completed` rejects a row whose recorded digest
disagrees with the queried one, so a stale journal reruns the changed
test instead of replaying a verdict for a different program.  Rows and
queries without digests keep the PR 8 name-only behaviour.

Only *conclusive* rows belong in a journal: an ``Inconclusive`` verdict
reflects the budget it was produced under, not the test, so callers skip
journaling it and the test reruns on resume.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence


class SweepJournal:
    """Checkpointed (test × models) verdict rows for one sweep shape."""

    def __init__(self, path, model_names: Sequence[str]):
        self.path = Path(path)
        self.model_names = sorted(model_names)
        self._done: Dict[str, Dict[str, str]] = {}
        self._digests: Dict[str, str] = {}
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn trailing line from an interrupted write
            if not isinstance(row, dict) or "test" not in row:
                continue
            if sorted(row.get("models", ())) != self.model_names:
                continue
            verdicts = row.get("verdicts")
            if isinstance(verdicts, dict):
                self._done[row["test"]] = verdicts
                digest = row.get("digest")
                if isinstance(digest, str):
                    self._digests[row["test"]] = digest
                else:
                    self._digests.pop(row["test"], None)

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._done)

    def completed(
        self, test_name: str, digest: Optional[str] = None
    ) -> Optional[Dict[str, str]]:
        """The journaled verdict row for ``test_name``, if any.

        When both the query and the journaled row carry a ``digest`` they
        must agree; a mismatch means the test's *program* changed since
        the row was written, so the row is stale and the caller reruns.
        A missing digest on either side preserves name-only matching.
        """
        row = self._done.get(test_name)
        if row is None:
            return None
        recorded = self._digests.get(test_name)
        if digest is not None and recorded is not None and digest != recorded:
            return None
        return row

    def completed_names(self) -> List[str]:
        return sorted(self._done)

    # -- recording -------------------------------------------------------

    def record(
        self,
        test_name: str,
        verdicts: Dict[str, str],
        digest: Optional[str] = None,
    ) -> None:
        """Append one completed row, durably."""
        self._done[test_name] = dict(verdicts)
        entry = {
            "test": test_name,
            "models": self.model_names,
            "verdicts": verdicts,
        }
        if digest is not None:
            entry["digest"] = digest
            self._digests[test_name] = digest
        else:
            self._digests.pop(test_name, None)
        payload = json.dumps(entry, sort_keys=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(payload + "\n")
            handle.flush()
            os.fsync(handle.fileno())
