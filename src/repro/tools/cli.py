"""Command-line entry points mirroring the paper's tool-suite.

* ``repro-herd`` — run litmus tests against a model (like herd7):
  ``repro-herd --model lkmm MP+wmb+rmb test.litmus ...``
* ``repro-klitmus`` — run tests on a simulated machine, many times (like
  klitmus): ``repro-klitmus --arch Power8 --runs 10000 SB``
* ``repro-diy`` — generate a litmus test from a cycle of edges (like
  diy7): ``repro-diy Rfe RmbdRR Fre WmbdWW``
* ``repro-lint`` — static analysis over cat models and litmus tests:
  ``repro-lint --all-models --library``, ``repro-lint my.cat my.litmus``
* ``repro-corpus`` — corpus-scale generation and differential mining:
  ``repro-corpus generate --seed 0 --target 10000 -o corpus.jsonl``,
  then ``sweep``, ``mine``, ``report`` and ``freeze`` over it.

Test arguments are either names from the built-in library or paths to
litmus files.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.cat import load_model
from repro.guard import Budget, SweepJournal
from repro.herd import INCONCLUSIVE, run_litmus
from repro.hardware import run_klitmus
from repro.hardware.archspec import ARCHITECTURES
from repro.litmus import library
from repro.litmus.ast import Program
from repro.litmus.parser import ParseError, parse_litmus
from repro.lkmm import LinuxKernelModel, explain_forbidden

#: Exit statuses for ``repro-herd``: distinguish "the run worked but a
#: budget left some verdict unsettled" (retryable with a bigger budget)
#: from usage/parse errors.
EXIT_OK = 0
EXIT_USAGE = 2
EXIT_INCONCLUSIVE = 3


class CliError(Exception):
    """A user-input problem (bad test name, unparsable file)."""


def _resolve_tests(names: List[str]) -> List[Program]:
    programs = []
    for name in names:
        path = Path(name)
        try:
            if path.exists():
                programs.append(
                    parse_litmus(path.read_text(), path=str(path))
                )
            else:
                programs.append(library.get(name))
        except ParseError as error:
            raise CliError(str(error)) from error
        except KeyError as error:
            message = error.args[0] if error.args else str(error)
            raise CliError(f"{name}: {message}") from error
        except OSError as error:
            raise CliError(f"{name}: {error}") from error
    return programs


def _resolve_model(name: str):
    if name in ("lkmm-native", "native"):
        return LinuxKernelModel()
    return load_model(name)


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect span timings and search counters; print a profile "
        "table after the run",
    )
    parser.add_argument(
        "--trace-json",
        metavar="FILE",
        help="write the full observability report (counters, span stats, "
        "raw span trace) as JSON to FILE",
    )
    parser.add_argument(
        "--bench",
        action="store_true",
        help="print an execution-kernel summary after the run: per-opcode "
        "bytecode-VM counts, prelude sharing, early exits, pool reuse",
    )


def _observe(args) -> "contextlib.AbstractContextManager":
    """An ``obs.collect`` context when ``--profile``/``--trace-json``/
    ``--bench`` asks for one, else a no-op context yielding ``None``."""
    if args.profile or args.trace_json or getattr(args, "bench", False):
        return obs.collect(trace=bool(args.trace_json))
    return contextlib.nullcontext()


def _format_vm_bench(report) -> str:
    """The ``--bench`` summary: where the bytecode VM spent its opcodes."""
    counters = report.counters
    lines = ["kernel bench:"]
    ops = sorted(
        (
            (name[len("vm.op."):], hits)
            for name, hits in counters.items()
            if name.startswith("vm.op.")
        ),
        key=lambda pair: (-pair[1], pair[0]),
    )
    if ops:
        width = max(len(op) for op, _ in ops)
        for op, hits in ops:
            lines.append(f"  vm.op.{op.ljust(width)} {hits}")
    else:
        lines.append(
            "  (no bytecode executed: REPRO_KERNEL_VM=0, frozenset "
            "backend, or the model fell back to the plan evaluator)"
        )
    for name in (
        "vm.runs",
        "vm.prelude_builds",
        "vm.prelude_hits",
        "herd.early_exit",
        "parallel.pool_spawn",
        "parallel.pool_reuse",
    ):
        if name in counters:
            lines.append(f"  {name} = {counters[name]}")
    return "\n".join(lines)


def _emit_observations(args, collector: Optional[obs.Collector]) -> None:
    if collector is None:
        return
    report = collector.report()
    if args.profile:
        print(report.format_profile())
    if getattr(args, "bench", False):
        print(_format_vm_bench(report))
    if args.trace_json:
        Path(args.trace_json).write_text(report.to_json() + "\n")
        print(f"wrote trace to {args.trace_json}")


def herd_main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-herd",
        description="Run litmus tests against a consistency model.",
    )
    parser.add_argument(
        "--model",
        default="lkmm",
        help="model name: lkmm (cat), lkmm-native, lkmm-core, c11, sc, "
        "tso, power, armv8, armv7, alpha",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="explain why the target behaviour is forbidden (LKMM only)",
    )
    parser.add_argument(
        "--states",
        action="store_true",
        help="print the histogram of reachable final states, herd-style",
    )
    parser.add_argument(
        "--check-races",
        action="store_true",
        help="also classify each test as Racy / Race-free (LKMM-derived "
        "data-race detector over plain accesses)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="shard each test's trace combinations over N worker processes",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per test; an exhausted budget degrades "
        "the verdict to Inconclusive (exit status 3) instead of hanging",
    )
    parser.add_argument(
        "--max-candidates",
        type=int,
        default=None,
        metavar="N",
        help="stop each test after N candidate executions",
    )
    parser.add_argument(
        "--max-states",
        type=int,
        default=None,
        metavar="N",
        help="stop each test after N exploration steps (bounds runs that "
        "prune heavily without yielding candidates)",
    )
    parser.add_argument(
        "--max-mem",
        type=float,
        default=None,
        metavar="MB",
        help="soft resident-memory ceiling in MB, sampled at safepoints",
    )
    parser.add_argument(
        "--journal",
        metavar="FILE",
        help="checkpoint completed verdicts to FILE (JSON lines) and skip "
        "tests already journaled there — an interrupted sweep resumes "
        "instead of restarting",
    )
    parser.add_argument(
        "--static-only",
        action="store_true",
        help="consult only the symbolic critical-cycle prover: print each "
        "test's statically decided verdict (with its proof reason) or "
        "Unknown, never enumerating candidate executions",
    )
    _add_obs_arguments(parser)
    parser.add_argument("tests", nargs="+", help="library names or file paths")
    args = parser.parse_args(argv)

    budget = Budget(
        wall_seconds=args.timeout,
        max_candidates=args.max_candidates,
        max_states=args.max_states,
        max_mem_mb=args.max_mem,
    )
    if not budget.bounded():
        budget = None

    try:
        model = _resolve_model(args.model)
        programs = _resolve_tests(args.tests)
    except CliError as error:
        print(f"repro-herd: {error}", file=sys.stderr)
        return EXIT_USAGE

    if args.static_only:
        from repro.analysis.symbolic import decide

        decided = 0
        with _observe(args) as collector:
            for program in programs:
                decision = decide(
                    model, program, require_sc_per_location=True
                )
                if decision is None:
                    print(f"{program.name} under {model.name}: Unknown")
                else:
                    decided += 1
                    print(
                        f"{program.name} under {model.name}: "
                        f"{decision.describe()}"
                    )
        print(f"static coverage: {decided}/{len(programs)} decided")
        _emit_observations(args, collector)
        return EXIT_OK

    journal = (
        SweepJournal(Path(args.journal), [model.name])
        if args.journal
        else None
    )
    inconclusive = 0
    with _observe(args) as collector:
        for program in programs:
            if journal is not None:
                done = journal.completed(program.name)
                if done is not None:
                    print(
                        f"{program.name} under {model.name}: "
                        f"{done[model.name]} (journaled)"
                    )
                    continue
            result = run_litmus(
                model, program, jobs=args.jobs, budget=budget
            )
            if result.verdict == INCONCLUSIVE:
                inconclusive += 1
            elif journal is not None:
                journal.record(program.name, {model.name: result.verdict})
            print(result.describe())
            if args.check_races:
                from repro.analysis.races import check_races

                race_model = (
                    model
                    if isinstance(model, LinuxKernelModel)
                    else LinuxKernelModel()
                )
                print(check_races(program, model=race_model).describe())
            if args.states:
                print(f"States {len(result.states)}")
                for state in sorted(result.states, key=repr):
                    registers = "; ".join(
                        f"{tid}:{name}={value!r}"
                        for (tid, name), value in sorted(state.registers.items())
                        if not name.startswith("__")
                    )
                    print(f"  {registers}")
                print(f"Observation {program.name} {result.observation}")
            if args.explain and result.verdict == "Forbid":
                if result.forbidden_witness is not None:
                    print(explain_forbidden(result.forbidden_witness))
    _emit_observations(args, collector)
    return EXIT_INCONCLUSIVE if inconclusive else EXIT_OK


def klitmus_main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-klitmus",
        description="Run litmus tests on a simulated machine, klitmus-style.",
    )
    parser.add_argument(
        "--arch",
        default="Power8",
        choices=sorted(ARCHITECTURES),
        help="simulated machine",
    )
    parser.add_argument("--runs", type=int, default=5000)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--histogram", action="store_true", help="print the full histogram"
    )
    parser.add_argument("tests", nargs="+", help="library names or file paths")
    args = parser.parse_args(argv)

    try:
        programs = _resolve_tests(args.tests)
    except CliError as error:
        print(f"repro-klitmus: {error}", file=sys.stderr)
        return EXIT_USAGE
    for program in programs:
        result = run_klitmus(
            program, args.arch, runs=args.runs, seed=args.seed
        )
        if args.histogram:
            print(result.describe())
        else:
            print(
                f"{program.name} on {args.arch}: {result.summary()} "
                "target observations"
            )
    return 0


def diy_main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-diy",
        description="Generate a litmus test from a cycle of relaxation edges.",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="also run the generated test against the LK model",
    )
    parser.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="write the generated test as a C litmus file",
    )
    parser.add_argument("edges", nargs="+", help="e.g. Rfe RmbdRR Fre WmbdWW")
    args = parser.parse_args(argv)

    from repro.diy import generate
    from repro.litmus.writer import write_litmus

    program = generate(args.edges)
    if args.output:
        Path(args.output).write_text(write_litmus(program))
        print(f"wrote {program.name} to {args.output}")
    else:
        print(write_litmus(program), end="")
    if args.check:
        result = run_litmus(LinuxKernelModel(), program)
        print(result.describe())
    return 0


def _check_races_task(program: Program):
    from repro.analysis.races import check_races
    from repro.kernel.parallel import run_observed

    return run_observed(lambda: check_races(program))


def _race_reports(race_targets: List[Program], jobs: int):
    """Race reports for each target, in input order, on ``jobs`` workers."""
    if jobs > 1 and len(race_targets) > 1:
        from repro.kernel.parallel import worker_pool

        with worker_pool(min(jobs, len(race_targets))) as pool:
            outcomes = pool.map(_check_races_task, race_targets)
    else:
        outcomes = [_check_races_task(program) for program in race_targets]
    for _, worker_report in outcomes:
        if worker_report is not None:
            obs.absorb(worker_report)
    return [report for report, _ in outcomes]


def lint_main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static analysis: lint cat models and litmus tests, "
        "optionally race-classify litmus tests.",
    )
    parser.add_argument(
        "--all-models",
        action="store_true",
        help="lint every cat model shipped in repro/cat/models/",
    )
    parser.add_argument(
        "--models",
        action="store_true",
        help="compile every bundled cat model to the relational IR and "
        "print the summary report plus all (surface + semantic) findings",
    )
    parser.add_argument(
        "--diff-models",
        nargs=2,
        metavar=("A", "B"),
        help="structurally compare two bundled cat models (e.g. "
        "--diff-models lkmm lkmm-core) and print the report",
    )
    parser.add_argument(
        "--library",
        action="store_true",
        help="lint every litmus test in the built-in library",
    )
    parser.add_argument(
        "--races",
        action="store_true",
        help="also run the execution-level data-race detector on every "
        "linted litmus test (slower: enumerates candidate executions)",
    )
    parser.add_argument(
        "--static-verdicts",
        action="store_true",
        help="report the symbolic prover's decided/unknown coverage over "
        "the litmus library (LIT007/LIT008 info findings, one coverage "
        "row per golden model)",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        metavar="N",
        help="race-classify litmus tests on N worker processes",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format: human-readable text (default), a JSON "
        "findings document, or SARIF 2.1.0 for code-scanning UIs",
    )
    _add_obs_arguments(parser)
    parser.add_argument(
        "targets",
        nargs="*",
        help="explicit .cat / .litmus files, or library test names",
    )
    args = parser.parse_args(argv)

    from repro.analysis.catlint import lint_all_models, lint_cat_path
    from repro.cat.parser import CatParseError
    from repro.analysis.findings import (
        count_errors,
        findings_to_json,
        findings_to_sarif,
    )
    from repro.analysis.litmuslint import lint_library, lint_program

    if args.diff_models:
        from repro.analysis.catir.diff import diff_models
        from repro.cat.eval import CatError

        try:
            diff = diff_models(args.diff_models[0], args.diff_models[1])
        except CatError as error:
            print(f"repro-lint: {error}", file=sys.stderr)
            return 2
        print(diff.describe(), end="")
        return 0

    if args.models:
        from repro.analysis.catir.diff import models_report

        print(models_report())
        args.all_models = True

    if (
        not args.all_models
        and not args.library
        and not args.targets
        and not args.static_verdicts
    ):
        args.all_models = True
        args.library = True

    findings = []
    race_targets: List[Program] = []
    racy = 0

    with _observe(args) as collector:
        if args.static_verdicts:
            from repro.analysis.symbolic.report import (
                coverage_findings,
                library_coverage,
            )

            with obs.span("lint.static_verdicts"):
                findings.extend(coverage_findings(library_coverage()))
        if args.all_models:
            with obs.span("lint.cat_models"):
                for model_findings in lint_all_models().values():
                    findings.extend(model_findings)
        if args.library:
            with obs.span("lint.library"):
                for name, test_findings in lint_library().items():
                    findings.extend(test_findings)
            if args.races:
                race_targets.extend(
                    library.get(name) for name in library.all_names()
                )
        for target in args.targets:
            path = Path(target)
            try:
                if path.suffix == ".cat":
                    findings.extend(lint_cat_path(path))
                else:
                    if path.exists():
                        program = parse_litmus(path.read_text(), path=str(path))
                    else:
                        program = library.get(target)
                    findings.extend(lint_program(program))
                    if args.races:
                        race_targets.append(program)
            except (ParseError, CatParseError) as error:
                # Parse errors are already located (path:line:col).
                print(f"repro-lint: {error}", file=sys.stderr)
                return 2
            except (KeyError, OSError) as error:
                # str(KeyError) wraps the message in quotes; unwrap it.
                if isinstance(error, KeyError) and error.args:
                    message = error.args[0]
                else:
                    message = str(error)
                print(f"repro-lint: {target}: {message}", file=sys.stderr)
                return 2

        with obs.span("lint.races"):
            race_reports = _race_reports(race_targets, args.jobs)
        for report in race_reports:
            findings.extend(report.findings())
            if report.racy:
                racy += 1
    _emit_observations(args, collector)

    if args.format == "json":
        print(findings_to_json(findings))
    elif args.format == "sarif":
        print(findings_to_sarif(findings))
    else:
        for finding in findings:
            print(finding.describe())
        if args.races:
            for report in race_reports:
                print(report.describe())
        if findings:
            print(
                f"{len(findings)} finding(s), "
                f"{count_errors(findings)} error(s), {racy} racy test(s)"
            )
        else:
            print("clean")

    # Warnings inform; only error-severity findings (data races included,
    # as RACE001 is an error) gate the exit status.
    return 1 if count_errors(findings) else 0


def _parse_thread_counts(text: str) -> List[int]:
    try:
        counts = sorted({int(part) for part in text.split(",") if part})
    except ValueError as error:
        raise CliError(f"bad --threads value {text!r}") from error
    if not counts or any(t < 2 for t in counts):
        raise CliError("--threads wants a comma list of counts >= 2")
    return counts


def _load_corpus_file(path: Path):
    """Corpus JSONL -> CorpusTest list (or CliError)."""
    import json

    from repro.corpus import CorpusTest

    try:
        lines = path.read_text().splitlines()
    except OSError as error:
        raise CliError(f"{path}: {error}") from error
    tests = []
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            tests.append(CorpusTest.from_json(json.loads(line)))
        except (ValueError, KeyError, ParseError) as error:
            raise CliError(f"{path}:{number}: {error}") from error
    return tests


def _load_matrix_file(path: Path):
    """Matrix JSON (as written by ``sweep -o``) -> (models, matrix)."""
    import json

    try:
        document = json.loads(path.read_text())
    except (OSError, ValueError) as error:
        raise CliError(f"{path}: {error}") from error
    if not isinstance(document, dict) or "matrix" not in document:
        raise CliError(f"{path}: not a sweep matrix file")
    return document.get("models", []), document["matrix"]


def _sweep_result_from_files(corpus_path: Path, matrix_path: Path):
    """Rehydrate a :class:`SweepResult` for the mine/report/freeze verbs."""
    from repro.corpus import SweepResult

    tests = _load_corpus_file(corpus_path)
    _, matrix = _load_matrix_file(matrix_path)
    result = SweepResult()
    result.tests = {test.name: test for test in tests}
    unknown = set(matrix) - set(result.tests)
    if unknown:
        example = sorted(unknown)[0]
        raise CliError(
            f"{matrix_path}: {len(unknown)} matrix row(s) missing from "
            f"{corpus_path} (e.g. {example!r}) — corpus/matrix mismatch"
        )
    result.matrix = {name: dict(row) for name, row in matrix.items()}
    return result


def corpus_main(argv: List[str] | None = None) -> int:
    """``repro-corpus``: the generate | sweep | mine | report pipeline."""
    parser = argparse.ArgumentParser(
        prog="repro-corpus",
        description="Corpus-scale litmus generation and differential "
        "data-mining: generate a deterministic test corpus, sweep it "
        "under the full model battery, mine the disagreements, render "
        "the stress report, freeze the golden sample.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_generation(p, target_default):
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--target",
            type=int,
            default=target_default,
            metavar="N",
            help="number of tests to draw from the deterministic stream",
        )
        p.add_argument(
            "--threads",
            default="2,3,4,5",
            metavar="LIST",
            help="comma list of thread counts (default 2,3,4,5)",
        )

    gen = sub.add_parser(
        "generate",
        help="emit unique, lint-clean litmus tests deterministically",
    )
    _add_generation(gen, target_default=10000)
    gen.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="write the corpus as JSON lines (default: stdout summary "
        "with per-family counts only)",
    )
    gen.add_argument(
        "--litmus-dir",
        metavar="DIR",
        help="additionally write each test as DIR/<name>.litmus",
    )

    swp = sub.add_parser(
        "sweep",
        help="judge a corpus under the model battery, resumably",
    )
    swp.add_argument(
        "--corpus",
        metavar="FILE",
        help="corpus JSONL from `generate -o` (default: regenerate from "
        "--seed/--target/--threads)",
    )
    _add_generation(swp, target_default=500)
    swp.add_argument("--jobs", "-j", type=int, default=1, metavar="N")
    swp.add_argument(
        "--journal",
        metavar="FILE",
        help="checkpoint completed rows to FILE and resume from it",
    )
    swp.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-row wall budget (tripped rows degrade to Inconclusive)",
    )
    swp.add_argument(
        "--wall",
        type=float,
        default=None,
        metavar="SECONDS",
        help="whole-sweep wall budget; on expiry the queued tail is "
        "abandoned and the partial matrix returned (resume via --journal)",
    )
    swp.add_argument(
        "-o",
        "--output",
        metavar="FILE",
        help="write the verdict matrix as JSON (default: stdout summary)",
    )
    _add_obs_arguments(swp)

    def _add_mining_inputs(p):
        p.add_argument("--corpus", required=True, metavar="FILE")
        p.add_argument(
            "--matrix",
            required=True,
            metavar="FILE",
            help="verdict matrix from `sweep -o`",
        )

    mine_p = sub.add_parser(
        "mine", help="classify the matrix by disagreement signature"
    )
    _add_mining_inputs(mine_p)

    rep = sub.add_parser("report", help="render STRESS_REPORT.md")
    _add_mining_inputs(rep)
    rep.add_argument(
        "-o", "--output", default="STRESS_REPORT.md", metavar="FILE"
    )

    frz = sub.add_parser(
        "freeze",
        help="freeze the stratified golden sample with locked verdicts",
    )
    _add_mining_inputs(frz)
    frz.add_argument("--size", type=int, default=500, metavar="N")
    frz.add_argument("--seed", type=int, default=0)
    frz.add_argument(
        "-o",
        "--output",
        default="tests/data/golden_corpus.jsonl",
        metavar="FILE",
    )

    args = parser.parse_args(argv)

    import json

    from repro.corpus import (
        CORPUS_MODELS,
        freeze_golden,
        generate_corpus,
        mine,
        stress_report,
        sweep_corpus,
    )
    from repro.litmus.writer import write_litmus

    try:
        if args.command == "generate":
            threads = _parse_thread_counts(args.threads)
            families: dict = {}
            count = 0
            out = open(args.output, "w") if args.output else None
            litmus_dir = Path(args.litmus_dir) if args.litmus_dir else None
            if litmus_dir is not None:
                litmus_dir.mkdir(parents=True, exist_ok=True)
            try:
                for test in generate_corpus(
                    seed=args.seed, target=args.target, threads=threads
                ):
                    count += 1
                    families[test.family] = families.get(test.family, 0) + 1
                    if out is not None:
                        out.write(json.dumps(test.to_json()) + "\n")
                    if litmus_dir is not None:
                        (litmus_dir / f"{test.name}.litmus").write_text(
                            write_litmus(test.program)
                        )
            finally:
                if out is not None:
                    out.close()
            print(
                f"generated {count} unique tests "
                f"({len(families)} families, seed {args.seed})"
            )
            if count < (args.target or 0):
                print(
                    f"repro-corpus: stream exhausted {args.target - count} "
                    "short of --target",
                    file=sys.stderr,
                )
            if args.output:
                print(f"wrote corpus to {args.output}")
            return EXIT_OK

        if args.command == "sweep":
            from repro.guard import Budget as _Budget
            from repro.guard import SweepJournal as _Journal

            if args.corpus:
                tests = _load_corpus_file(Path(args.corpus))
            else:
                tests = list(
                    generate_corpus(
                        seed=args.seed,
                        target=args.target,
                        threads=_parse_thread_counts(args.threads),
                    )
                )
            journal = (
                _Journal(
                    Path(args.journal),
                    [spec.name for spec in CORPUS_MODELS],
                )
                if args.journal
                else None
            )
            row_budget = (
                _Budget(wall_seconds=args.timeout) if args.timeout else None
            )
            with _observe(args) as collector:
                result = sweep_corpus(
                    tests,
                    jobs=args.jobs,
                    journal=journal,
                    row_budget=row_budget,
                    wall_seconds=args.wall,
                )
            _emit_observations(args, collector)
            inconclusive = sum(
                1
                for row in result.matrix.values()
                if INCONCLUSIVE in row.values()
            )
            print(
                f"swept {result.swept} rows "
                f"({result.journal_skips} journaled, "
                f"{len(result.abandoned)} abandoned, "
                f"{inconclusive} inconclusive)"
            )
            if args.output:
                document = {
                    "models": [spec.name for spec in CORPUS_MODELS],
                    "matrix": result.matrix,
                }
                Path(args.output).write_text(
                    json.dumps(document, indent=2, sort_keys=True) + "\n"
                )
                print(f"wrote matrix to {args.output}")
            return (
                EXIT_INCONCLUSIVE
                if (result.abandoned or inconclusive)
                else EXIT_OK
            )

        # mine / report / freeze all start from the same two files.
        result = _sweep_result_from_files(
            Path(args.corpus), Path(args.matrix)
        )
        if args.command == "mine":
            report = mine(result)
            print(
                f"{report.total} rows, {len(report.signatures)} "
                f"signatures, {report.agreeing} in full agreement, "
                f"{len(report.soundness_alerts)} soundness alert(s)"
            )
            for bucket in report.ranked_signatures()[:10]:
                print(f"  {bucket.count:6d}  {bucket.signature}")
            return EXIT_OK
        if args.command == "report":
            report = mine(result)
            Path(args.output).write_text(stress_report(report, result))
            print(f"wrote {args.output}")
            return EXIT_OK
        # freeze
        names = freeze_golden(
            result, args.output, size=args.size, seed=args.seed
        )
        print(f"froze {len(names)} tests to {args.output}")
        return EXIT_OK
    except CliError as error:
        print(f"repro-corpus: {error}", file=sys.stderr)
        return EXIT_USAGE


if __name__ == "__main__":  # pragma: no cover
    sys.exit(herd_main())
