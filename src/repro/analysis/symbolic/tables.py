"""Axiom-to-order-table lowering: which edge shapes a model orders.

The diy edge vocabulary (:mod:`repro.diy.edges`) names the shapes
critical cycles are built from — communication edges (``Rfe``/``Fre``/
``Coe``) and program-order edges decorated with fences, dependencies and
access annotations (``MbdWR``, ``DpAddrdR``, ``AcqdR``...).  For each
shape this module asks the matcher one *linear* entailment question: is
the shape's (source, target) pair provably inside the transitive closure
of one of the model's acyclicity axioms?

The answer per axiom is the classic "ordered" column of a model's
relaxation table (Section 4 of the paper): a cycle whose every edge is
ordered by the *same* acyclicity axiom is forbidden outright.  The table
is also the cheapest summary of what a model guarantees — ``repro-lint
--static-verdicts`` prints it, and the DESIGN chapter derives the
worked examples from it.

Each query runs on a tiny synthetic skeleton: two accesses of the
required kinds (same location and different threads for communication
shapes, different locations on one thread for program-order shapes),
the decorating fence interposed, the dependency recorded, annotations
applied as access tags.  Everything is an under-approximation exactly
like the prover's cycles: a True cell is a proof, an empty cell only
means "not provable here".
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analysis.catir import ir
from repro.analysis.symbolic.match import EdgeSet, Matcher
from repro.analysis.symbolic.prover import compiled_model
from repro.analysis.symbolic.skeleton import SkelEvent
from repro.diy.edges import ANY, EDGES, Edge
from repro.events import FENCE, ONCE, READ, WRITE
from repro.model import Model

#: Tags forced by diy endpoint annotations.
_ANNOT_TAGS = {"acquire": "acquire", "release": "release", None: None}


def _shape(edge: Edge) -> Optional[Tuple[list, EdgeSet]]:
    """The synthetic positions and pinned edges realising one shape, or
    ``None`` for shapes without fixed endpoint kinds."""
    if edge.src == ANY or edge.tgt == ANY:
        return None
    src_kind = READ if edge.src == "R" else WRITE
    tgt_kind = READ if edge.tgt == "R" else WRITE
    src_tag = _ANNOT_TAGS.get(edge.src_annot) or ONCE
    tgt_tag = _ANNOT_TAGS.get(edge.tgt_annot) or ONCE
    if edge.external:
        # Communication: thread changes, location stays.
        src = SkelEvent(0, 0, src_kind, src_tag, "x")
        tgt = SkelEvent(1, 0, tgt_kind, tgt_tag, "x")
        pair = (src.key, tgt.key)
        edges = EdgeSet(
            rf=frozenset([pair] if edge.comm == "rf" else []),
            co=frozenset([pair] if edge.comm == "co" else []),
            fr=frozenset([pair] if edge.comm == "fr" else []),
        )
        return [src, tgt], edges
    # Program order: thread stays, location changes (the "d" of diy).
    positions = [SkelEvent(0, 0, src_kind, src_tag, "x")]
    if edge.fence is not None:
        positions.append(SkelEvent(0, 1, FENCE, edge.fence))
    deps = frozenset({0}) if edge.dep is not None else frozenset()
    positions.append(
        SkelEvent(
            0,
            len(positions),
            tgt_kind,
            tgt_tag,
            "y",
            addr_deps=deps if edge.dep == "addr" else frozenset(),
            data_deps=deps if edge.dep == "data" else frozenset(),
            ctrl_deps=deps if edge.dep == "ctrl" else frozenset(),
        )
    )
    return positions, EdgeSet()


def order_table(model: Model) -> Dict[str, Tuple[str, ...]]:
    """``{edge shape name: acyclicity axioms that provably order it}``.

    An empty tuple means the shape is not provably ordered — the model
    may relax it (``PodWR`` under TSO) or the proof is simply out of the
    matcher's reach.  Models without a relational IR yield all-empty
    tables.
    """
    compiled = compiled_model(model)
    table: Dict[str, Tuple[str, ...]] = {}
    for name, edge in EDGES.items():
        shape = _shape(edge)
        if shape is None:
            table[name] = ()
            continue
        positions, edges = shape
        labels = []
        if compiled is not None:
            matcher = Matcher(None, edges, positions, period=None)
            for check in compiled.checks:
                if check.kind != "acyclic" or check.flag or check.negated:
                    continue
                if matcher.match(ir.plus(check.root), 0, len(positions) - 1):
                    labels.append(check.label)
        table[name] = tuple(sorted(set(labels)))
    return table


def ordered_shapes(model: Model) -> Tuple[str, ...]:
    """The shape names the model provably orders (non-empty table rows)."""
    return tuple(
        sorted(name for name, axioms in order_table(model).items() if axioms)
    )
