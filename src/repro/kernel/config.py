"""Runtime configuration of the execution kernel.

Two independent switches, each settable via environment variable or
programmatically (context managers, used by the equivalence tests and the
benchmark harness):

* ``REPRO_RELATION_BACKEND`` — ``bitset`` (default) selects the
  integer-indexed adjacency-bitset representation of
  :class:`repro.relations.Relation`; ``frozenset`` selects the original
  pure-Python frozenset-of-pairs reference implementation.
* ``REPRO_INCREMENTAL`` — ``1`` (default) enables per-trace incremental
  checking: the trace-invariant structure of a candidate execution is
  computed once per trace combination and shared across all rf×co
  candidates, and coherence-order permutations are pruned incrementally
  against ``acyclic(po-loc | com)``.  ``0`` restores the original
  behaviour (everything recomputed per candidate, complete candidates
  filtered after construction).
* ``REPRO_CHECK_PLAN`` — ``1`` (default) lets :class:`repro.cat.eval.
  CatModel` execute checks through the compiled check plan of
  :mod:`repro.analysis.catir.plan` (shared-subexpression DAG, invariant
  sub-expressions memoised on the trace skeleton).  ``0`` forces the
  original statement-walking interpreter.  Models that the plan compiler
  cannot handle fall back to the interpreter automatically either way.
* ``REPRO_KERNEL_VM`` — ``1`` (default) lowers each check plan to the
  relational bytecode of :mod:`repro.kernel.vm` and executes candidates
  through the register VM (trace-invariant registers computed once per
  skeleton, word-packed bitset values, no per-node memo dictionaries);
  it also arms the batched drivers (``verdicts`` early-exit, persistent
  worker pools).  ``0`` restores the demand-driven plan evaluator and
  the exhaustive drivers exactly as they behaved before the VM existed.
  The VM needs the ``bitset`` backend; under ``frozenset`` it falls back
  to the plan evaluator per execution.
* ``REPRO_STATIC_VERDICT`` — ``1`` (default) lets the batched drivers
  (:func:`repro.herd.verdicts`, the corpus sweep) consult the symbolic
  critical-cycle prover of :mod:`repro.analysis.symbolic` before
  enumerating candidate executions; statically decided (model, test)
  cells skip enumeration entirely.  ``0`` disables the pre-pass, making
  every verdict go through full enumeration again.

The environment is re-read on every query (with a last-value parse cache,
so the hot :class:`~repro.relations.Relation` constructor pays one dict
lookup and one comparison): tests can toggle backends per-case with
``monkeypatch.setenv`` and no subprocess.  Programmatic settings
(:func:`set_backend` / the context managers) are process-local *overrides*
that take precedence over the environment until cleared.

Both switches are observational no-ops: verdicts, witness counts and
final-state sets are identical under every combination (see
``tests/test_kernel_equiv.py``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional

BITSET = "bitset"
FROZENSET = "frozenset"

_BACKENDS = (BITSET, FROZENSET)

_FALSY = ("0", "false", "no", "off")

#: Programmatic overrides; ``None`` means "defer to the environment".
_backend_override: Optional[str] = None
_incremental_override: Optional[bool] = None
_check_plan_override: Optional[bool] = None
_vm_override: Optional[bool] = None
_static_verdict_override: Optional[bool] = None

#: Last-raw-value parse caches: (raw env string or None, parsed value).
_backend_env_cache = ("\0unset", BITSET)
_incremental_env_cache = ("\0unset", True)
_check_plan_env_cache = ("\0unset", True)
_vm_env_cache = ("\0unset", True)
_static_verdict_env_cache = ("\0unset", True)


def _env_backend() -> str:
    global _backend_env_cache
    raw = os.environ.get("REPRO_RELATION_BACKEND")
    cached_raw, cached_value = _backend_env_cache
    if raw == cached_raw:
        return cached_value
    value = BITSET if raw is None else raw.strip().lower()
    if value not in _BACKENDS:
        raise ValueError(
            f"REPRO_RELATION_BACKEND={value!r}: expected one of {_BACKENDS}"
        )
    _backend_env_cache = (raw, value)
    return value


def _env_incremental() -> bool:
    global _incremental_env_cache
    raw = os.environ.get("REPRO_INCREMENTAL")
    cached_raw, cached_value = _incremental_env_cache
    if raw == cached_raw:
        return cached_value
    value = True if raw is None else raw.strip() not in _FALSY
    _incremental_env_cache = (raw, value)
    return value


def backend() -> str:
    """The active relation backend name (``bitset`` or ``frozenset``)."""
    if _backend_override is not None:
        return _backend_override
    return _env_backend()


def use_bitset() -> bool:
    return backend() == BITSET


def set_backend(name: Optional[str]) -> None:
    """Set a process-local backend override; ``None`` defers to the env."""
    global _backend_override
    if name is not None and name not in _BACKENDS:
        raise ValueError(f"unknown backend {name!r}: expected one of {_BACKENDS}")
    _backend_override = name


def incremental_enabled() -> bool:
    if _incremental_override is not None:
        return _incremental_override
    return _env_incremental()


def set_incremental(enabled: Optional[bool]) -> None:
    """Set a process-local override; ``None`` defers to the environment."""
    global _incremental_override
    _incremental_override = None if enabled is None else bool(enabled)


def _env_check_plan() -> bool:
    global _check_plan_env_cache
    raw = os.environ.get("REPRO_CHECK_PLAN")
    cached_raw, cached_value = _check_plan_env_cache
    if raw == cached_raw:
        return cached_value
    value = True if raw is None else raw.strip() not in _FALSY
    _check_plan_env_cache = (raw, value)
    return value


def check_plan_enabled() -> bool:
    if _check_plan_override is not None:
        return _check_plan_override
    return _env_check_plan()


def set_check_plan(enabled: Optional[bool]) -> None:
    """Set a process-local override; ``None`` defers to the environment."""
    global _check_plan_override
    _check_plan_override = None if enabled is None else bool(enabled)


def _env_vm() -> bool:
    global _vm_env_cache
    raw = os.environ.get("REPRO_KERNEL_VM")
    cached_raw, cached_value = _vm_env_cache
    if raw == cached_raw:
        return cached_value
    value = True if raw is None else raw.strip() not in _FALSY
    _vm_env_cache = (raw, value)
    return value


def vm_enabled() -> bool:
    if _vm_override is not None:
        return _vm_override
    return _env_vm()


def set_vm(enabled: Optional[bool]) -> None:
    """Set a process-local override; ``None`` defers to the environment."""
    global _vm_override
    _vm_override = None if enabled is None else bool(enabled)


def _env_static_verdict() -> bool:
    global _static_verdict_env_cache
    raw = os.environ.get("REPRO_STATIC_VERDICT")
    cached_raw, cached_value = _static_verdict_env_cache
    if raw == cached_raw:
        return cached_value
    value = True if raw is None else raw.strip() not in _FALSY
    _static_verdict_env_cache = (raw, value)
    return value


def static_verdict_enabled() -> bool:
    if _static_verdict_override is not None:
        return _static_verdict_override
    return _env_static_verdict()


def set_static_verdict(enabled: Optional[bool]) -> None:
    """Set a process-local override; ``None`` defers to the environment."""
    global _static_verdict_override
    _static_verdict_override = None if enabled is None else bool(enabled)


@contextmanager
def use_backend(name: str):
    """Temporarily select a relation backend (for tests and benchmarks)."""
    previous = _backend_override
    set_backend(name)
    try:
        yield
    finally:
        set_backend(previous)


@contextmanager
def use_incremental(enabled: bool):
    """Temporarily enable/disable incremental checking."""
    previous = _incremental_override
    set_incremental(enabled)
    try:
        yield
    finally:
        set_incremental(previous)


@contextmanager
def use_check_plan(enabled: bool):
    """Temporarily enable/disable the compiled check plan."""
    previous = _check_plan_override
    set_check_plan(enabled)
    try:
        yield
    finally:
        set_check_plan(previous)


@contextmanager
def use_vm(enabled: bool):
    """Temporarily enable/disable the relational bytecode VM."""
    previous = _vm_override
    set_vm(enabled)
    try:
        yield
    finally:
        set_vm(previous)


@contextmanager
def use_static_verdict(enabled: bool):
    """Temporarily enable/disable the symbolic verdict pre-pass."""
    previous = _static_verdict_override
    set_static_verdict(enabled)
    try:
        yield
    finally:
        set_static_verdict(previous)
