"""Record instrumented benchmark runs into ``BENCH_obs.json``.

ROADMAP's north star ("as fast as the hardware allows") is re-anchored by
``BENCH_*.json`` trajectories; this harness makes the observability layer
feed one.  It runs the standard suites — the two Table-5 litmus workloads
and the library-wide verdict sweep of ``benchmarks/test_perf_kernel.py``,
plus the Section 6 RCU-implementation verification — each under
:func:`repro.obs.collect`, and **appends** a structured entry per
invocation, so successive runs across PRs accumulate a perf trajectory::

    PYTHONPATH=src python benchmarks/record.py [--output BENCH_obs.json]

Entry schema (one JSON object per invocation, newest last)::

    {
      "schema": 1,
      "backend": "bitset", "incremental": true,
      "python": "3.11.7",
      "suites": [
        {"suite": "litmus:MP+wmb+rmb", "seconds": 0.01,
         "counters": {...}, "spans": {...}},   # RunReport fields
        ...
      ]
    }

Timestamps are deliberately omitted from the appended entries' identity:
entries are ordered by position, so the file stays reproducible and
diff-friendly; a wall-clock stamp is still recorded for humans.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs  # noqa: E402
from repro.herd import run_litmus, verdicts  # noqa: E402
from repro.kernel import config as kconfig  # noqa: E402
from repro.litmus import library  # noqa: E402
from repro.lkmm import LinuxKernelModel  # noqa: E402
from repro.rcu import verify_implementation  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_obs.json"


def _observed(suite: str, fn) -> Dict[str, Any]:
    """Run one suite under a fresh collector; return its structured entry."""
    with obs.collect() as collector:
        start = time.perf_counter()
        fn()
        seconds = time.perf_counter() - start
    report = collector.report()
    return {
        "suite": suite,
        "seconds": round(seconds, 4),
        "counters": report.counters,
        "spans": {
            name: {key: round(value, 6) for key, value in stat.items()}
            for name, stat in report.spans.items()
        },
    }


def standard_suites() -> List[Dict[str, Any]]:
    model = LinuxKernelModel()
    entries = [
        _observed(
            "litmus:MP+wmb+rmb",
            lambda: run_litmus(
                model, library.get("MP+wmb+rmb"), require_sc_per_location=True
            ),
        ),
        _observed(
            "litmus:WRC+wmb+acq",
            lambda: run_litmus(
                model, library.get("WRC+wmb+acq"), require_sc_per_location=True
            ),
        ),
        _observed(
            "library-verdicts:LKMM",
            lambda: verdicts(
                [model], library.all_tests(), require_sc_per_location=True
            ),
        ),
        _observed(
            "rcu-implementation:loop-bound-1",
            lambda: verify_implementation(library.get("RCU-MP"), loop_bound=1),
        ),
    ]
    return entries


def record(output: Path) -> Dict[str, Any]:
    entry = {
        "schema": 1,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "backend": kconfig.backend(),
        "incremental": kconfig.incremental_enabled(),
        "python": platform.python_version(),
        "suites": standard_suites(),
    }
    history: List[Dict[str, Any]] = []
    if output.exists():
        history = json.loads(output.read_text())
        if not isinstance(history, list):
            raise SystemExit(
                f"{output} exists but is not a JSON list; refusing to append"
            )
    history.append(entry)
    output.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Run the standard suites instrumented and append the "
        "observations to the BENCH_obs.json trajectory."
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=DEFAULT_OUTPUT,
        metavar="FILE",
        help=f"trajectory file to append to (default: {DEFAULT_OUTPUT})",
    )
    args = parser.parse_args(argv)
    entry = record(args.output)
    for suite in entry["suites"]:
        print(f"{suite['suite']}: {suite['seconds']}s")
    print(f"appended entry #{_entry_count(args.output)} to {args.output}")
    return 0


def _entry_count(output: Path) -> int:
    return len(json.loads(output.read_text()))


if __name__ == "__main__":
    sys.exit(main())
